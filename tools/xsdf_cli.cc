// xsdf — command-line front end to the XSDF library.
//
//   xsdf disambiguate <file.xml> [radius]   annotate a document and
//                                           print the semantic tree
//   xsdf batch <dir|filelist> [flags]       concurrent batch mode
//   xsdf gen-corpus <dir> [--seed S]        write the example corpus
//   xsdf ambiguity <file.xml>               rank nodes by Amb_Deg
//   xsdf query <file.xml> <path>            evaluate an XPath-lite query
//   xsdf expand <keyword> <file.xml>        in-context query expansion
//   xsdf network-stats                      mini-WordNet statistics
//   xsdf export-wndb <dir>                  write the lexicon as WNDB
//
// The semantic network is loaded exactly once per process, lazily, on
// the first command that needs it; every subcommand receives it by
// reference. Reads the bundled mini-WordNet; point XSDF_WNDB_DIR at a
// WNDB directory (e.g. a real WordNet dict/) to use that instead.

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/ambiguity.h"
#include "core/disambiguator.h"
#include "core/tree_builder.h"
#include "datasets/generator.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/engine.h"
#include "wordnet/mini_wordnet.h"
#include "wordnet/wndb.h"
#include "xml/parser.h"
#include "xml/path_query.h"

namespace {

namespace fs = std::filesystem;
using xsdf::wordnet::SemanticNetwork;

int Usage() {
  std::fprintf(
      stderr,
      "usage: xsdf <command> [args]\n"
      "  disambiguate <file.xml> [radius]  annotate and print semantic tree\n"
      "  batch <dir|filelist> [flags]      disambiguate a corpus "
      "concurrently\n"
      "      --threads N   worker threads (default 4)\n"
      "      --radius D    sphere radius (default 2)\n"
      "      --passes P    runs over the corpus; caches stay warm "
      "(default 1)\n"
      "      --no-cache    disable the shared similarity/sense caches\n"
      "      --quiet       suppress per-document trees on stdout\n"
      "      --metrics-out FILE  write counters + latency histograms as "
      "JSON\n"
      "      --trace-out FILE    write Chrome trace-event JSON "
      "(Perfetto)\n"
      "  explain <file.xml> <node> [--radius D]\n"
      "                                    per-node disambiguation audit "
      "as JSON;\n"
      "                                    <node> is a numeric node id or "
      "a\n"
      "                                    tag path like films/picture/"
      "director\n"
      "  gen-corpus <dir> [--seed S]       write the generated example "
      "corpus\n"
      "  ambiguity <file.xml>              rank nodes by ambiguity degree\n"
      "  query <file.xml> <path>           evaluate an XPath-lite query\n"
      "  expand <keyword> <file.xml>       context-aware term expansion\n"
      "  network-stats                     semantic network statistics\n"
      "  export-wndb <dir>                 write lexicon as WNDB files\n"
      "env: XSDF_WNDB_DIR=<dir> loads a WNDB directory instead of the\n"
      "     bundled mini-WordNet\n");
  return 2;
}

/// Loads the semantic network on first use and caches it for the rest
/// of the process; returns nullptr (after printing the error) when
/// loading fails.
const SemanticNetwork* GetNetwork() {
  static xsdf::Result<SemanticNetwork> network = [] {
    const char* dir = std::getenv("XSDF_WNDB_DIR");
    if (dir != nullptr && dir[0] != '\0') {
      return xsdf::wordnet::ParseWndbDirectory(dir);
    }
    return xsdf::wordnet::BuildMiniWordNet();
  }();
  if (!network.ok()) {
    std::fprintf(stderr, "cannot load semantic network: %s\n",
                 network.status().ToString().c_str());
    return nullptr;
  }
  return &*network;
}

/// Parses the integer value of a `--flag N` pair; false on a missing
/// or non-numeric value.
bool ParseIntValue(const std::vector<std::string>& args, size_t* i,
                   int* out) {
  if (*i + 1 >= args.size()) return false;
  ++*i;
  const std::string& text = args[*i];
  char* end = nullptr;
  long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return false;
  *out = static_cast<int>(value);
  return true;
}

/// Parses the value of a `--flag VALUE` pair; false when missing.
bool ParseStringValue(const std::vector<std::string>& args, size_t* i,
                      std::string* out) {
  if (*i + 1 >= args.size()) return false;
  ++*i;
  *out = args[*i];
  return !out->empty();
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return static_cast<bool>(out);
}

int CmdDisambiguate(const SemanticNetwork& network, const char* path,
                    int radius) {
  auto doc = xsdf::xml::ParseFile(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  xsdf::core::DisambiguatorOptions options;
  options.sphere_radius = radius;
  xsdf::core::Disambiguator system(&network, options);
  auto result = system.Run(*doc);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", SemanticTreeToXml(*result, network).c_str());
  std::fprintf(stderr, "%zu nodes, %zu disambiguated\n",
               result->tree.size(), result->assignments.size());
  return 0;
}

/// Collects the batch inputs: every *.xml under a directory (sorted by
/// path for a deterministic job order), or the non-empty lines of a
/// file-list file.
bool CollectBatchInputs(const std::string& input,
                        std::vector<std::string>* paths) {
  std::error_code ec;
  if (fs::is_directory(input, ec)) {
    for (const auto& entry : fs::directory_iterator(input, ec)) {
      if (!entry.is_regular_file()) continue;
      if (entry.path().extension() == ".xml") {
        paths->push_back(entry.path().string());
      }
    }
    if (ec) {
      std::fprintf(stderr, "cannot read directory %s: %s\n", input.c_str(),
                   ec.message().c_str());
      return false;
    }
    std::sort(paths->begin(), paths->end());
    return true;
  }
  std::ifstream list(input);
  if (!list) {
    std::fprintf(stderr, "cannot open %s\n", input.c_str());
    return false;
  }
  std::string line;
  while (std::getline(list, line)) {
    if (!line.empty()) paths->push_back(line);
  }
  return true;
}

int CmdBatch(const SemanticNetwork& network,
             const std::vector<std::string>& args) {
  std::string input;
  int threads = 4;
  int radius = 2;
  int passes = 1;
  bool no_cache = false;
  bool quiet = false;
  std::string metrics_out;
  std::string trace_out;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--threads") {
      if (!ParseIntValue(args, &i, &threads)) return Usage();
    } else if (arg == "--radius") {
      if (!ParseIntValue(args, &i, &radius)) return Usage();
    } else if (arg == "--passes") {
      if (!ParseIntValue(args, &i, &passes)) return Usage();
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--metrics-out") {
      if (!ParseStringValue(args, &i, &metrics_out)) return Usage();
    } else if (arg == "--trace-out") {
      if (!ParseStringValue(args, &i, &trace_out)) return Usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    } else if (input.empty()) {
      input = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return Usage();
    }
  }
  if (input.empty() || threads < 1 || passes < 1 || radius < 1) {
    return Usage();
  }

  std::vector<std::string> paths;
  if (!CollectBatchInputs(input, &paths)) return 1;
  if (paths.empty()) {
    std::fprintf(stderr, "no .xml inputs under %s\n", input.c_str());
    return 1;
  }

  std::vector<xsdf::runtime::DocumentJob> jobs;
  jobs.reserve(paths.size());
  for (const std::string& path : paths) {
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream content;
    content << file.rdbuf();
    jobs.push_back({0, path, content.str()});
  }

  // The sinks exist only when requested, so a plain batch run keeps
  // the instrumentation-free hot path (no clock reads, no recording).
  std::unique_ptr<xsdf::obs::MetricsRegistry> metrics;
  std::unique_ptr<xsdf::obs::TraceSession> trace;
  if (!metrics_out.empty()) {
    metrics = std::make_unique<xsdf::obs::MetricsRegistry>();
  }
  if (!trace_out.empty()) {
    trace = std::make_unique<xsdf::obs::TraceSession>();
  }

  xsdf::runtime::EngineOptions options;
  options.threads = threads;
  options.disambiguator.sphere_radius = radius;
  options.enable_similarity_cache = !no_cache;
  options.enable_sense_cache = !no_cache;
  options.metrics = metrics.get();
  options.trace = trace.get();
  xsdf::runtime::DisambiguationEngine engine(&network, options);

  bool any_failed = false;
  for (int pass = 1; pass <= passes; ++pass) {
    engine.ResetCounters();  // per-pass stats; cache contents stay warm
    auto start = std::chrono::steady_clock::now();
    std::vector<xsdf::runtime::DocumentResult> results =
        engine.RunBatch(jobs);
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    for (const auto& result : results) {
      if (!result.ok) {
        any_failed = true;
        std::fprintf(stderr, "%s: %s\n", result.name.c_str(),
                     result.error.c_str());
        continue;
      }
      if (!quiet) {
        std::printf("<!-- %s -->\n%s\n", result.name.c_str(),
                    result.semantic_xml.c_str());
      }
    }
    std::fprintf(
        stderr, "pass %d/%d: %zu docs in %.0f ms (%.1f docs/s) | %s\n",
        pass, passes, results.size(), seconds * 1e3,
        seconds > 0 ? static_cast<double>(results.size()) / seconds : 0.0,
        FormatEngineStats(engine.stats()).c_str());
  }

  // Export after the last pass: workers are idle (blocked on the
  // queue), so the trace snapshot sees a quiescent recording state.
  if (metrics != nullptr) {
    engine.PublishStatsToMetrics();
    if (!WriteTextFile(metrics_out, metrics->ToJson())) return 1;
    std::fprintf(stderr, "metrics written to %s\n", metrics_out.c_str());
  }
  if (trace != nullptr) {
    if (!WriteTextFile(trace_out, trace->ToJson())) return 1;
    std::fprintf(stderr, "trace (%zu events) written to %s\n",
                 trace->event_count(), trace_out.c_str());
  }
  return any_failed ? 1 : 0;
}

/// Resolves an `xsdf explain` node designator against a labeled tree:
/// either a numeric NodeId, or a slash-separated path whose components
/// match each node's raw tag/token text or preprocessed label
/// (case-insensitively) along the node's root path. A leading slash
/// anchors the path at the root; otherwise it matches a root-path
/// suffix, so `director` finds every <director> node. Returns matches
/// in preorder.
std::vector<xsdf::xml::NodeId> ResolveNodeQuery(
    const xsdf::xml::LabeledTree& tree, const std::string& query) {
  std::vector<xsdf::xml::NodeId> matches;
  if (query.empty()) return matches;

  bool all_digits = true;
  for (char c : query) {
    if (!std::isdigit(static_cast<unsigned char>(c))) all_digits = false;
  }
  if (all_digits) {
    int id = std::atoi(query.c_str());
    if (id >= 0 && static_cast<size_t>(id) < tree.size()) {
      matches.push_back(id);
    }
    return matches;
  }

  const bool anchored = query[0] == '/';
  std::vector<std::string> components;
  std::string component;
  for (size_t pos = anchored ? 1 : 0; pos <= query.size(); ++pos) {
    if (pos == query.size() || query[pos] == '/') {
      if (!component.empty()) components.push_back(component);
      component.clear();
    } else {
      component.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(query[pos]))));
    }
  }
  if (components.empty()) return matches;

  auto node_matches = [&](xsdf::xml::NodeId id, const std::string& want) {
    const xsdf::xml::TreeNode& node = tree.node(id);
    std::string raw = node.raw;
    for (char& c : raw) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return raw == want || node.label == want;
  };
  for (const xsdf::xml::TreeNode& node : tree.nodes()) {
    std::vector<xsdf::xml::NodeId> path = tree.RootPath(node.id);
    if (path.size() < components.size()) continue;
    if (anchored && path.size() != components.size()) continue;
    size_t offset = path.size() - components.size();
    bool ok = true;
    for (size_t c = 0; c < components.size() && ok; ++c) {
      ok = node_matches(path[offset + c], components[c]);
    }
    if (ok) matches.push_back(node.id);
  }
  return matches;
}

int CmdExplain(const SemanticNetwork& network,
               const std::vector<std::string>& args) {
  std::string file;
  std::string query;
  int radius = 2;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--radius") {
      if (!ParseIntValue(args, &i, &radius)) return Usage();
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    } else if (file.empty()) {
      file = arg;
    } else if (query.empty()) {
      query = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return Usage();
    }
  }
  if (file.empty() || query.empty() || radius < 1) return Usage();

  auto doc = xsdf::xml::ParseFile(file.c_str());
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  // Same options as `xsdf batch` (the caches only move memoized values
  // around), so the audited choice reproduces the batch output exactly.
  xsdf::core::DisambiguatorOptions options;
  options.sphere_radius = radius;
  auto tree =
      xsdf::core::BuildTree(*doc, network, options.include_values);
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  std::vector<xsdf::xml::NodeId> matches = ResolveNodeQuery(*tree, query);
  if (matches.empty()) {
    std::fprintf(stderr, "no node matches '%s' in %s\n", query.c_str(),
                 file.c_str());
    return 1;
  }

  xsdf::core::Disambiguator system(&network, options);
  xsdf::obs::JsonWriter writer;
  writer.BeginObject();
  writer.Key("file");
  writer.Value(file);
  writer.Key("query");
  writer.Value(query);
  writer.Key("radius");
  writer.Value(radius);
  writer.Key("nodes");
  writer.BeginArray();
  size_t explained = 0;
  for (xsdf::xml::NodeId id : matches) {
    auto audit = system.ExplainNode(*tree, id);
    if (!audit.ok()) continue;  // senseless label: nothing to audit
    writer.BeginObject();
    AppendNodeAuditFields(&writer, *audit, network);
    writer.EndObject();
    ++explained;
  }
  writer.EndArray();
  writer.Key("matches");
  writer.Value(static_cast<uint64_t>(matches.size()));
  writer.Key("explained");
  writer.Value(static_cast<uint64_t>(explained));
  writer.EndObject();
  std::printf("%s\n", writer.str().c_str());
  if (explained == 0) {
    std::fprintf(stderr,
                 "%zu node(s) matched but none has candidate senses\n",
                 matches.size());
    return 1;
  }
  return 0;
}

int CmdGenCorpus(const std::vector<std::string>& args) {
  std::string dir;
  int seed = 42;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--seed") {
      if (!ParseIntValue(args, &i, &seed)) return Usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    } else if (dir.empty()) {
      dir = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return Usage();
    }
  }
  if (dir.empty()) return Usage();
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  size_t written = 0;
  auto write_doc = [&](const xsdf::datasets::GeneratedDocument& doc) {
    fs::path path = fs::path(dir) / doc.name;
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
      return false;
    }
    out << doc.xml;
    ++written;
    return true;
  };
  for (const auto* generator : xsdf::datasets::AllDatasets()) {
    for (const auto& doc :
         generator->Generate(static_cast<uint64_t>(seed))) {
      if (!write_doc(doc)) return 1;
    }
  }
  for (const auto& doc : xsdf::datasets::Figure1Documents()) {
    if (!write_doc(doc)) return 1;
  }
  std::printf("%zu documents written to %s\n", written, dir.c_str());
  return 0;
}

int CmdAmbiguity(const SemanticNetwork& network, const char* path) {
  auto doc = xsdf::xml::ParseFile(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  auto tree = xsdf::core::BuildTree(*doc, network);
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  struct Row {
    xsdf::xml::NodeId id;
    double degree;
  };
  std::vector<Row> rows;
  for (const auto& node : tree->nodes()) {
    rows.push_back(
        {node.id, xsdf::core::AmbiguityDegree(*tree, node.id, network)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.degree > b.degree; });
  std::printf("%-6s %-16s %-8s %-8s %s\n", "node", "label", "senses",
              "depth", "Amb_Deg");
  for (const Row& row : rows) {
    const auto& node = tree->node(row.id);
    int senses = 0;
    for (const auto& token :
         xsdf::core::LabelSenseTokens(network, node.label)) {
      senses += network.SenseCount(token);
    }
    std::printf("%-6d %-16s %-8d %-8d %.4f\n", row.id,
                node.label.c_str(), senses, node.depth, row.degree);
  }
  return 0;
}

int CmdQuery(const char* path, const char* query_text) {
  auto doc = xsdf::xml::ParseFile(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  auto query = xsdf::xml::PathQuery::Parse(query_text);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  auto results = query->Evaluate(*doc);
  for (const xsdf::xml::Node* node : results) {
    std::printf("<%s> %s\n", node->name().c_str(),
                node->InnerText().c_str());
  }
  std::fprintf(stderr, "%zu matches\n", results.size());
  return 0;
}

int CmdExpand(const SemanticNetwork& network, const char* keyword,
              const char* path) {
  auto doc = xsdf::xml::ParseFile(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  xsdf::core::Disambiguator system(&network);
  auto result = system.Run(*doc);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::string lowered;
  for (const char* p = keyword; *p; ++p) {
    lowered.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  bool found = false;
  for (const auto& node : result->tree.nodes()) {
    if (node.label != lowered) continue;
    auto it = result->assignments.find(node.id);
    if (it == result->assignments.end()) continue;
    found = true;
    const auto& c = network.GetConcept(it->second.sense.primary);
    std::printf("sense in context: %s — %s\nexpansion:", c.label().c_str(),
                c.gloss.c_str());
    for (const std::string& synonym : c.synonyms) {
      if (synonym != lowered) std::printf(" %s", synonym.c_str());
    }
    for (const auto& edge : c.edges) {
      if (edge.relation == xsdf::wordnet::Relation::kHypernym) {
        std::printf(" %s",
                    network.GetConcept(edge.target).label().c_str());
      }
    }
    std::printf("\n");
    break;
  }
  if (!found) {
    std::fprintf(stderr, "keyword '%s' not found in document\n", keyword);
    return 1;
  }
  return 0;
}

int CmdNetworkStats(const SemanticNetwork& network) {
  std::printf("concepts:     %zu\n", network.size());
  std::printf("lemmas:       %zu\n", network.LemmaCount());
  std::printf("max polysemy: %d\n", network.MaxPolysemy());
  std::printf("max depth:    %d\n", network.MaxDepth());
  size_t edges = 0;
  int by_pos[4] = {0, 0, 0, 0};
  for (const auto& c : network.concepts()) {
    edges += c.edges.size();
    by_pos[static_cast<int>(c.pos)]++;
  }
  std::printf("edges:        %zu\n", edges);
  std::printf("nouns/verbs/adjs/advs: %d/%d/%d/%d\n", by_pos[0], by_pos[1],
              by_pos[2], by_pos[3]);
  return 0;
}

int CmdExportWndb(const SemanticNetwork& network, const char* dir) {
  auto status = xsdf::wordnet::WriteWndbToDirectory(network, dir);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("WNDB files written to %s\n", dir);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  std::vector<std::string> rest(argv + 2, argv + argc);

  // Commands that do not touch the semantic network.
  if (command == "query") {
    if (rest.size() != 2) return Usage();
    return CmdQuery(rest[0].c_str(), rest[1].c_str());
  }
  if (command == "gen-corpus") {
    return CmdGenCorpus(rest);
  }

  const SemanticNetwork* network = nullptr;
  auto require_network = [&]() -> const SemanticNetwork* {
    if (network == nullptr) network = GetNetwork();
    return network;
  };

  if (command == "disambiguate") {
    if (rest.empty() || rest.size() > 2) return Usage();
    int radius = 2;
    if (rest.size() == 2) {
      char* end = nullptr;
      radius = static_cast<int>(std::strtol(rest[1].c_str(), &end, 10));
      if (end == rest[1].c_str() || *end != '\0' || radius < 1) {
        return Usage();
      }
    }
    if (require_network() == nullptr) return 1;
    return CmdDisambiguate(*network, rest[0].c_str(), radius);
  }
  if (command == "batch") {
    if (require_network() == nullptr) return 1;
    return CmdBatch(*network, rest);
  }
  if (command == "explain") {
    if (require_network() == nullptr) return 1;
    return CmdExplain(*network, rest);
  }
  if (command == "ambiguity") {
    if (rest.size() != 1) return Usage();
    if (require_network() == nullptr) return 1;
    return CmdAmbiguity(*network, rest[0].c_str());
  }
  if (command == "expand") {
    if (rest.size() != 2) return Usage();
    if (require_network() == nullptr) return 1;
    return CmdExpand(*network, rest[0].c_str(), rest[1].c_str());
  }
  if (command == "network-stats") {
    if (!rest.empty()) return Usage();
    if (require_network() == nullptr) return 1;
    return CmdNetworkStats(*network);
  }
  if (command == "export-wndb") {
    if (rest.size() != 1) return Usage();
    if (require_network() == nullptr) return 1;
    return CmdExportWndb(*network, rest[0].c_str());
  }
  return Usage();
}
