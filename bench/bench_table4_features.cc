// Reproduces paper Table 4: the qualitative feature matrix comparing
// XSDF with the RPD and VSD baselines. Each row is checked against the
// actual implementation by exercising the corresponding API, so the
// matrix cannot silently drift from the code.

#include <cstdio>

#include "core/baselines.h"
#include "core/disambiguator.h"
#include "core/tree_builder.h"
#include "sim/measure.h"
#include "text/preprocess.h"
#include "wordnet/mini_wordnet.h"

int main() {
  auto network = xsdf::wordnet::BuildMiniWordNet();
  if (!network.ok()) return 1;

  // Verified capability probes.
  xsdf::text::LexiconProbe probe = [&](const std::string& lemma) {
    return network->Contains(lemma);
  };
  bool tokenizes_compounds =
      xsdf::text::PreprocessTagName("MovieStar", probe).tokens.size() == 2;
  bool compound_collocation =
      xsdf::text::PreprocessTagName("FirstName", probe).compound_in_lexicon;
  bool measures_extensible =
      xsdf::sim::MeasureRegistry::Global().Names().size() >= 3;

  auto tree = xsdf::core::BuildTreeFromXml(
      "<films><picture><cast><star>Kelly</star></cast></picture></films>",
      *network);
  xsdf::core::Disambiguator xsdf_system(&*network);
  auto semantic = xsdf_system.RunOnTree(*tree);
  bool disambiguates_content = false;
  for (const auto& [id, assignment] : semantic->assignments) {
    if (tree->node(id).kind == xsdf::xml::TreeNodeKind::kToken) {
      disambiguates_content = true;
    }
  }
  xsdf::core::RpdBaseline rpd(&*network);
  auto rpd_result = rpd.RunOnTree(*tree);
  bool rpd_content = false;
  for (const auto& [id, assignment] : rpd_result->assignments) {
    if (tree->node(id).kind == xsdf::xml::TreeNodeKind::kToken) {
      rpd_content = true;
    }
  }

  std::printf("Table 4. Comparing XSDF with existing approaches.\n\n");
  std::printf("%-52s %-9s %-9s %-9s\n", "Feature", "RPD", "VSD", "XSDF");
  auto row = [](const char* feature, bool rpd_v, bool vsd_v, bool xsdf_v) {
    std::printf("%-52s %-9s %-9s %-9s\n", feature, rpd_v ? "yes" : "-",
                vsd_v ? "yes" : "-", xsdf_v ? "yes" : "-");
  };
  row("Considers linguistic pre-processing", true, true, true);
  row("Considers tag tokenization (compound terms)", false, true,
      tokenizes_compounds && compound_collocation);
  row("Addresses XML node ambiguity (target selection)", false, false,
      true);
  row("Integrates an inclusive XML structure context", false, true, true);
  row("Flexible w.r.t. context size", false, true, true);
  row("Adopts relational information approach", false, true, true);
  row("Combines several semantic similarity measures", false, false,
      measures_extensible);
  row("Straightforward mathematical functions", false, false, true);
  row("Disambiguates XML structure and content", rpd_content, false,
      disambiguates_content);
  std::printf("\n(XSDF column entries verified against the live "
              "implementation.)\n");
  return 0;
}
