#ifndef XSDF_FUZZ_HARNESSES_H_
#define XSDF_FUZZ_HARNESSES_H_

#include <cstddef>
#include <cstdint>

/// The fuzzing oracles, one per target. Each consumes one flat input
/// buffer and either returns normally or aborts the process on an
/// oracle violation (a crash under libFuzzer, a test failure under the
/// standalone driver and fuzz_regression_test). They live in a plain
/// library, separate from the LLVMFuzzerTestOneInput wrappers, so the
/// exact same code runs under libFuzzer, under the gcc standalone
/// replay driver, and inside plain ctest replaying the checked-in
/// regression corpus.
namespace xsdf::fuzz {

/// xml::Parse under fuzz limits; accepted documents must round-trip
/// (serialize -> reparse -> structurally equal, serialization a fixed
/// point) and build a LabeledTree that passes Validate().
void DriveXmlParser(const uint8_t* data, size_t size);

/// wordnet::ParseWndb over a "%%file" container (see
/// propgen::UnpackWndbContainer); accepted networks must re-serialize,
/// and the rewrite must be a parse/write fixed point.
void DriveWndbParser(const uint8_t* data, size_t size);

/// LabeledTree construction and query surface: first byte selects
/// options, the rest is XML; a built tree must pass Validate() and
/// every query (LCA, distance, rings, paths) must terminate.
void DriveLabeledTree(const uint8_t* data, size_t size);

/// snapshot::LoadNetworkSnapshotFromBuffer over an 8-aligned copy of
/// the input: every rejection must carry a message, and an accepted
/// network must survive its full read surface (ancestors, glosses,
/// senses, taxonomy queries) and re-snapshot into bytes the loader
/// accepts again.
void DriveSnapshotLoader(const uint8_t* data, size_t size);

}  // namespace xsdf::fuzz

#endif  // XSDF_FUZZ_HARNESSES_H_
