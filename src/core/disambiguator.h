#ifndef XSDF_CORE_DISAMBIGUATOR_H_
#define XSDF_CORE_DISAMBIGUATOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/ambiguity.h"
#include "core/label_space.h"
#include "core/scores.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/combined.h"
#include "wordnet/semantic_network.h"
#include "xml/dom.h"
#include "xml/labeled_tree.h"

namespace xsdf::core {

/// Which disambiguation process to run (paper §3.5). kCombined blends
/// both per Eq. 13 using the combination weights.
enum class DisambiguationProcess { kConceptBased, kContextBased, kCombined };

/// Pluggable provider of a label's candidate senses. The default path
/// enumerates candidates on every node; a provider can memoize them
/// (label -> candidates is a pure function of the network). A provider
/// shared across threads must be internally thread-safe; the runtime
/// layer supplies a sharded LRU implementation with hit/miss counters.
///
/// Entries are handed out as shared_ptr<const SenseEntry>: a memoized
/// hit is a pointer copy, not a candidate-vector copy, and an entry a
/// worker is still scoring against stays alive even if the provider
/// evicts it concurrently. `label_id` is the label's LabelSpace id —
/// the natural cache key; all callers of one provider must resolve ids
/// through the same LabelSpace (the engine guarantees this by owning
/// exactly one).
class SenseInventory {
 public:
  virtual ~SenseInventory() = default;

  /// The shared candidate entry of a preprocessed node label, in
  /// EnumerateCandidates() order; never null.
  virtual std::shared_ptr<const SenseEntry> Entry(
      const wordnet::SemanticNetwork& network, uint32_t label_id,
      const std::string& label) = 0;
};

/// Everything the user can tune (the paper's Motivation 4): ambiguity
/// weights + selection threshold, sphere radius (context size),
/// semantic similarity measure weights, and the process combination.
struct DisambiguatorOptions {
  /// Node selection (paper §3.3).
  AmbiguityWeights ambiguity_weights;
  double ambiguity_threshold = 0.0;

  /// Context size: the sphere neighborhood radius d (paper §3.4).
  int sphere_radius = 2;

  /// Semantic similarity combination (Definition 9).
  sim::SimilarityWeights similarity_weights;

  /// Registry measure composition (the `--measures` flag). When
  /// non-empty it overrides `similarity_weights` and must be valid
  /// (MeasureConfig::Validate() OK — the CLI guarantees this by going
  /// through MeasureConfig::Parse); when empty the paper hybrid under
  /// `similarity_weights` is used. Always read it through
  /// EffectiveMeasureConfig() so the measure the disambiguator builds,
  /// the fingerprint the engine keys its similarity cache on, and the
  /// spec string serve reports can never disagree.
  sim::MeasureConfig measure_config;

  /// The composition actually in effect under the override rule above.
  sim::MeasureConfig EffectiveMeasureConfig() const {
    return measure_config.empty() ? similarity_weights.ToConfig()
                                  : measure_config;
  }

  /// Disambiguation process and, for kCombined, its weights (Eq. 13).
  DisambiguationProcess process = DisambiguationProcess::kConceptBased;
  CombinationWeights combination_weights;

  /// Vector comparison used by the context-based process (paper
  /// footnote 10: cosine by default, Jaccard as an alternative).
  VectorSimilarity vector_similarity = VectorSimilarity::kCosine;

  /// Structure-and-content (true) vs structure-only (false).
  bool include_values = true;

  /// Ablation switch: build spheres from structural nodes only,
  /// ignoring content tokens (disables the paper's
  /// structure-and-content context integration).
  bool structure_only_context = false;

  /// Ablation switch: treat the sphere context as a plain bag of words
  /// (uniform structural proximity), as prior approaches do.
  bool bag_of_words_context = false;

  /// Run the id-based front half (interned spheres, id context
  /// vectors, memoized sense resolution) on trees that carry label
  /// ids. The string pipeline is kept as the legacy oracle; both
  /// produce bit-identical output, so this flag only moves time.
  bool use_id_frontend = true;

  /// The label id space shared with the sense inventory and the tree
  /// builder (non-owning; optional). Without one the disambiguator
  /// owns a private space — fine standalone, but an engine sharing a
  /// SenseInventory across workers must install one shared space so
  /// ids agree across threads.
  LabelSpace* label_space = nullptr;

  /// Weight of the most-frequent-sense prior drawn from the weighted
  /// network SN-bar (the concept frequencies of paper Figure 2).
  /// Candidate scores receive + prior * freq(c)/max_freq(candidates),
  /// resolving low-signal contexts toward the corpus-dominant sense —
  /// the standard knowledge-based WSD backoff. 0 disables it.
  double frequency_prior = 0.15;

  /// Non-owning shared caches (both optional; installed by the runtime
  /// engine). `similarity_cache` replaces the combined measure's
  /// private memo table; `sense_inventory` replaces direct
  /// EnumerateCandidates() calls. Either may be shared across many
  /// Disambiguator instances/threads, in which case it must be
  /// thread-safe. They never change results — only where memoized
  /// values live.
  sim::SimilarityCacheHook* similarity_cache = nullptr;
  SenseInventory* sense_inventory = nullptr;

  /// Optional observability sinks (non-owning; both may be shared
  /// across Disambiguator instances — they are internally
  /// thread-safe). `metrics` receives the per-stage latency histograms
  /// (stage.select_us / stage.context_us / stage.score_us, recorded
  /// per document) and the per-node distributions (ambiguity degree,
  /// candidate count, top-2 score margin). `trace` receives spans for
  /// the select stage and for every disambiguated node. Instrumentation
  /// never changes results; with both null the pipeline does not even
  /// read the clock.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceSession* trace = nullptr;
};

/// The sense assigned to one target node.
struct SenseAssignment {
  xml::NodeId node = xml::kInvalidNode;
  SenseCandidate sense;       ///< winning candidate
  double score = 0.0;         ///< its (combined) score
  double ambiguity = 0.0;     ///< the node's Amb_Deg
  int candidate_count = 0;    ///< size of the sense inventory examined
};

/// Audit record of one candidate sense considered for a node: the raw
/// process components (before Eq. 13 weighting and prior smoothing)
/// plus the final score the argmax saw. With the frequency prior
/// active, `total` is the top-normalized weighted score plus `prior`;
/// without it, total = w_concept * concept_score + w_context *
/// context_score exactly as DisambiguateNode computed it.
struct CandidateAudit {
  SenseCandidate sense;
  double concept_score = 0.0;  ///< Concept_Score (Definition 8 / Eq. 10)
  double context_score = 0.0;  ///< Context_Score (Definition 10 / Eq. 12)
  double prior = 0.0;          ///< frequency-prior contribution
  double total = 0.0;          ///< final score used by the argmax
};

/// The full per-node disambiguation audit trail: every candidate with
/// its score decomposition, which one won, and by how much. Produced
/// by Disambiguator::ExplainNode(); the chosen sense is byte-identical
/// to what DisambiguateNode() assigns for the same tree and options.
struct NodeAudit {
  xml::NodeId node = xml::kInvalidNode;
  std::string label;           ///< preprocessed node label
  double ambiguity = 0.0;      ///< Amb_Deg of the node
  std::vector<CandidateAudit> candidates;
  int chosen_index = -1;       ///< into `candidates`
  double margin = 0.0;         ///< total(top1) - total(top2); 0 if single
};

/// The semantic XML tree: the input labeled tree plus a concept
/// assignment for every disambiguated target node (paper Figure 4's
/// output). Non-target nodes remain untouched.
struct SemanticTree {
  xml::LabeledTree tree;
  std::unordered_map<xml::NodeId, SenseAssignment> assignments;
};

/// The XSDF pipeline (paper Figure 3): linguistic pre-processing ->
/// ambiguous-node selection -> sphere context construction -> hybrid
/// disambiguation.
class Disambiguator {
 public:
  /// `network` must outlive the disambiguator and have finalized
  /// frequencies.
  Disambiguator(const wordnet::SemanticNetwork* network,
                DisambiguatorOptions options = {});

  const DisambiguatorOptions& options() const { return options_; }

  /// The label space ids are resolved through (the installed one, or
  /// the private space created when none was). Internally
  /// synchronized; callers building trees for RunOnTree() should pass
  /// it to BuildTree() so the id front end engages without a second
  /// resolution pass.
  LabelSpace* label_space() const { return label_space_; }

  /// Runs the full pipeline on a parsed document.
  Result<SemanticTree> Run(const xml::Document& doc) const;

  /// Runs the pipeline on an XML string.
  Result<SemanticTree> RunOnXml(const std::string& xml_text) const;

  /// Runs selection + disambiguation on an already-built tree.
  Result<SemanticTree> RunOnTree(xml::LabeledTree tree) const;

  /// The target nodes RunOnTree would disambiguate, in selection
  /// order, timed into stage.select_us. Exposed so the runtime engine
  /// can split the per-target DisambiguateNode() loop into stealable
  /// chunks across workers — DisambiguateNode is a pure function of
  /// (tree, id) for identically-configured disambiguators, so chunk
  /// placement never changes results. Requires a tree whose label ids
  /// match this disambiguator's expectations (the id-assignment pass
  /// RunOnTree applies to id-less trees is NOT run here).
  std::vector<xml::NodeId> SelectTargets(const xml::LabeledTree& tree) const;

  /// Disambiguates a single node of `tree`; returns the winning
  /// assignment, or NotFound when the label has no candidate senses.
  Result<SenseAssignment> DisambiguateNode(const xml::LabeledTree& tree,
                                           xml::NodeId id) const;

  /// Scores every candidate sense of `id` (exposed for analysis and
  /// tests); parallel to EnumerateCandidates() order.
  std::vector<double> ScoreCandidates(const xml::LabeledTree& tree,
                                      xml::NodeId id) const;

  /// Disambiguates one node and returns the full audit trail: every
  /// candidate with its concept/context/prior score decomposition and
  /// the chosen index. The chosen sense and scores are byte-identical
  /// to DisambiguateNode() on the same tree — audit capture never
  /// perturbs the computation. NotFound when the label is senseless.
  Result<NodeAudit> ExplainNode(const xml::LabeledTree& tree,
                                xml::NodeId id) const;

 private:
  /// Per-document accumulators for the stage histograms: context
  /// covers sphere + context-vector + sense resolution, score covers
  /// the candidate scoring loop (incl. the frequency prior).
  struct StageAccum {
    uint64_t context_ns = 0;
    uint64_t score_ns = 0;
  };
  /// Handles resolved once against options_.metrics (all null without
  /// a registry, making every record site a dead branch).
  struct Instruments {
    obs::Histogram* select_us = nullptr;
    obs::Histogram* context_us = nullptr;
    obs::Histogram* score_us = nullptr;
    obs::Histogram* node_ambiguity_pct = nullptr;
    obs::Histogram* node_candidates = nullptr;
    obs::Histogram* node_margin_milli = nullptr;
  };

  CombinationWeights EffectiveCombination() const;

  /// The node's interned label id: straight off the tree when it has
  /// ids, resolved through the label space otherwise.
  uint32_t LabelIdFor(const xml::LabeledTree& tree, xml::NodeId id) const;

  /// The node's shared candidate entry, via the sense inventory when
  /// installed; never null.
  std::shared_ptr<const SenseEntry> CandidatesFor(
      const xml::LabeledTree& tree, xml::NodeId id) const;

  /// DisambiguateNode with optional stage-time accumulation and audit
  /// capture (both null on the plain path).
  Result<SenseAssignment> DisambiguateNodeImpl(const xml::LabeledTree& tree,
                                               xml::NodeId id,
                                               StageAccum* accum,
                                               NodeAudit* audit) const;

  /// Scores an already-enumerated candidate list, resolving the node's
  /// sphere context once for all candidates (DisambiguateNode passes
  /// the list it fetched, avoiding a second sense-inventory lookup).
  std::vector<double> ScoreCandidatesImpl(
      const xml::LabeledTree& tree, xml::NodeId id,
      const std::vector<SenseCandidate>& candidates,
      StageAccum* accum = nullptr, NodeAudit* audit = nullptr) const;

  const wordnet::SemanticNetwork* network_;
  DisambiguatorOptions options_;
  sim::CombinedMeasure measure_;
  Instruments ins_;
  /// Private space when options_.label_space was null.
  std::unique_ptr<LabelSpace> owned_label_space_;
  LabelSpace* label_space_ = nullptr;  ///< never null after construction
};

/// Renders a semantic tree as an annotated XML document: one element
/// per tree node carrying its label, kind, and — when disambiguated —
/// the assigned concept's label, id, and gloss. This is the
/// "semantically augmented XML tree" deliverable of the paper abstract.
std::string SemanticTreeToXml(const SemanticTree& semantic_tree,
                              const wordnet::SemanticNetwork& network);

/// Writes a NodeAudit's fields (label, ambiguity, candidates with
/// concept labels/glosses resolved against `network`, chosen sense,
/// margin) into an already-open JSON object — callers add their own
/// context keys (file, path) around it. See also NodeAuditToJson().
void AppendNodeAuditFields(obs::JsonWriter* writer, const NodeAudit& audit,
                           const wordnet::SemanticNetwork& network);

/// A NodeAudit as a standalone JSON object (the `xsdf explain` record).
std::string NodeAuditToJson(const NodeAudit& audit,
                            const wordnet::SemanticNetwork& network);

}  // namespace xsdf::core

#endif  // XSDF_CORE_DISAMBIGUATOR_H_
