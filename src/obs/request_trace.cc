#include "obs/request_trace.h"

#include <algorithm>

#include "common/strings.h"
#include "obs/json_writer.h"

namespace xsdf::obs {

void SlowRequestBuffer::InsertLocked(Window* window,
                                     std::unique_ptr<RequestTrace> trace) {
  if (window->size() >= keep_) {
    if (trace->total_us() <= window->back()->total_us()) return;
    window->pop_back();
  }
  auto position = std::upper_bound(
      window->begin(), window->end(), trace,
      [](const std::unique_ptr<RequestTrace>& a,
         const std::unique_ptr<RequestTrace>& b) {
        return a->total_us() > b->total_us();
      });
  window->insert(position, std::move(trace));
}

void SlowRequestBuffer::Offer(std::unique_ptr<RequestTrace> trace,
                              uint64_t now_ns) {
  if (trace == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!window_started_) {
    window_started_ = true;
    window_start_ns_ = now_ns;
  } else if (now_ns - window_start_ns_ >= window_ns_) {
    previous_ = std::move(current_);
    current_.clear();
    window_start_ns_ = now_ns;
  }
  InsertLocked(&current_, std::move(trace));
}

size_t SlowRequestBuffer::retained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_.size() + previous_.size();
}

std::string SlowRequestBuffer::ToChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  // One timestamp origin for the whole export so tids line up on a
  // shared timeline; the earliest span start across retained traces.
  uint64_t origin_ns = ~0ull;
  auto scan = [&](const Window& window) {
    for (const auto& trace : window) {
      if (trace->start_ns() < origin_ns) origin_ns = trace->start_ns();
      for (const RequestTrace::Span& span : trace->spans()) {
        if (span.start_ns < origin_ns) origin_ns = span.start_ns;
      }
    }
  };
  scan(current_);
  scan(previous_);
  if (origin_ns == ~0ull) origin_ns = 0;

  JsonWriter writer;
  writer.BeginObject();
  writer.Key("traceEvents");
  writer.BeginArray();
  int tid = 0;
  auto emit = [&](const Window& window, const char* which) {
    for (const auto& trace : window) {
      ++tid;
      writer.BeginObject();
      writer.Key("ph").Value("M");
      writer.Key("pid").Value(1);
      writer.Key("tid").Value(tid);
      writer.Key("name").Value("thread_name");
      writer.Key("args").BeginObject();
      writer.Key("name").Value(StrFormat(
          "req %016llx %s [%s, %llu us]",
          static_cast<unsigned long long>(trace->request_id()),
          trace->label().c_str(), which,
          static_cast<unsigned long long>(trace->total_us())));
      writer.EndObject();
      writer.EndObject();
      for (const RequestTrace::Span& span : trace->spans()) {
        writer.BeginObject();
        writer.Key("ph").Value("X");
        writer.Key("pid").Value(1);
        writer.Key("tid").Value(tid);
        writer.Key("name").Value(span.name);
        // Chrome trace timestamps are microseconds; keep three decimals
        // of sub-µs resolution like TraceSession::ToJson does.
        writer.Key("ts").Raw(StrFormat(
            "%llu.%03llu",
            static_cast<unsigned long long>((span.start_ns - origin_ns) /
                                            1000),
            static_cast<unsigned long long>((span.start_ns - origin_ns) %
                                            1000)));
        writer.Key("dur").Raw(StrFormat(
            "%llu.%03llu",
            static_cast<unsigned long long>(span.dur_ns / 1000),
            static_cast<unsigned long long>(span.dur_ns % 1000)));
        writer.EndObject();
      }
    }
  };
  emit(current_, "current");
  emit(previous_, "previous");
  writer.EndArray();
  writer.Key("retained").Value(static_cast<uint64_t>(tid));
  writer.EndObject();
  return writer.TakeString();
}

}  // namespace xsdf::obs
