#ifndef XSDF_SIM_GLOSS_OVERLAP_H_
#define XSDF_SIM_GLOSS_OVERLAP_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/measure.h"

namespace xsdf::sim {

/// A normalized extension of Banerjee & Pedersen's (2003) extended
/// gloss overlap, the paper's Sim_Gloss.
///
/// Each concept is expanded to an *extended gloss*: its own gloss plus
/// the glosses of directly related concepts (hypernyms, hyponyms,
/// meronyms, holonyms), tokenized, stop-word filtered, and stemmed.
/// The raw Lesk-style score sums |phrase|^2 over the maximal shared
/// word sequences of the two extended glosses (longer shared phrases
/// are quadratically more informative). The score is normalized by
/// min(|g1|, |g2|)^2 — the largest value the phrase-overlap sum can
/// take — giving a measure in [0, 1].
///
/// On a finalized network the per-pair work never touches a string:
/// the extended glosses are precomputed interned token-id sequences
/// (SemanticNetwork::GlossTokens()), a sorted-bag intersection pass
/// proves zero overlap cheaply, and the phrase DP runs over uint32 ids
/// in reused thread-local scratch. Token ids are injective over
/// spellings, so id equality is string equality and the score is
/// bit-identical to the legacy string path (LegacySimilarity()).
class GlossOverlapMeasure : public SimilarityMeasure {
 public:
  double Similarity(const wordnet::SemanticNetwork& network,
                    wordnet::ConceptId a,
                    wordnet::ConceptId b) const override;
  std::string name() const override { return "gloss-overlap"; }

  /// The pre-interning implementation (re-tokenizes both extended
  /// glosses per call); oracle for the id-based kernel.
  static double LegacySimilarity(const wordnet::SemanticNetwork& network,
                                 wordnet::ConceptId a,
                                 wordnet::ConceptId b);

  /// Token sequence of the extended gloss of `id` (exposed for tests).
  static std::vector<std::string> ExtendedGloss(
      const wordnet::SemanticNetwork& network, wordnet::ConceptId id);

  /// The raw phrase-overlap score between two token sequences: repeated
  /// extraction of the longest common (contiguous) phrase, adding
  /// length^2 each time, until no common token remains.
  static double PhraseOverlapScore(std::vector<std::string> a,
                                   std::vector<std::string> b);

  /// Same extraction over interned token ids, using flat thread-local
  /// scratch for the DP table and the shrinking sequences.
  static double PhraseOverlapScoreIds(std::span<const uint32_t> a,
                                      std::span<const uint32_t> b);
};

}  // namespace xsdf::sim

#endif  // XSDF_SIM_GLOSS_OVERLAP_H_
