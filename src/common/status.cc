#include "common/status.h"

namespace xsdf {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IoError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace xsdf
