#include "xml/dom.h"

namespace xsdf::xml {

const std::string* Node::FindAttribute(std::string_view name) const {
  for (const Attribute& attr : attributes_) {
    if (attr.name == name) return &attr.value;
  }
  return nullptr;
}

Node* Node::AddChild(std::unique_ptr<Node> child) {
  children_.push_back(std::move(child));
  return children_.back().get();
}

Node* Node::AddElement(std::string name) {
  auto child = std::make_unique<Node>(NodeKind::kElement);
  child->set_name(std::move(name));
  return AddChild(std::move(child));
}

Node* Node::AddText(std::string text) {
  auto child = std::make_unique<Node>(NodeKind::kText);
  child->set_text(std::move(text));
  return AddChild(std::move(child));
}

const Node* Node::FindChildElement(std::string_view name) const {
  for (const auto& child : children_) {
    if (child->is_element() && child->name() == name) return child.get();
  }
  return nullptr;
}

std::vector<const Node*> Node::FindChildElements(
    std::string_view name) const {
  std::vector<const Node*> out;
  for (const auto& child : children_) {
    if (child->is_element() && child->name() == name) {
      out.push_back(child.get());
    }
  }
  return out;
}

std::string Node::InnerText() const {
  std::string out;
  if (is_text()) out += text_;
  for (const auto& child : children_) out += child->InnerText();
  return out;
}

size_t Node::ElementChildCount() const {
  size_t n = 0;
  for (const auto& child : children_) {
    if (child->is_element()) ++n;
  }
  return n;
}

namespace {
size_t CountElementsIn(const Node& node) {
  size_t n = node.is_element() ? 1 : 0;
  for (const auto& child : node.children()) n += CountElementsIn(*child);
  return n;
}
}  // namespace

size_t Document::CountElements() const {
  return root_ ? CountElementsIn(*root_) : 0;
}

}  // namespace xsdf::xml
