#ifndef XSDF_CORE_DISAMBIGUATOR_H_
#define XSDF_CORE_DISAMBIGUATOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/ambiguity.h"
#include "core/scores.h"
#include "sim/combined.h"
#include "wordnet/semantic_network.h"
#include "xml/dom.h"
#include "xml/labeled_tree.h"

namespace xsdf::core {

/// Which disambiguation process to run (paper §3.5). kCombined blends
/// both per Eq. 13 using the combination weights.
enum class DisambiguationProcess { kConceptBased, kContextBased, kCombined };

/// Pluggable provider of a label's candidate senses. The default path
/// calls EnumerateCandidates() on every node; a provider can memoize it
/// (lemma -> candidates is a pure function of the network). A provider
/// shared across threads must be internally thread-safe; the runtime
/// layer supplies a sharded LRU implementation with hit/miss counters.
class SenseInventory {
 public:
  virtual ~SenseInventory() = default;

  /// Candidate senses of a preprocessed node label, in
  /// EnumerateCandidates() order.
  virtual std::vector<SenseCandidate> Candidates(
      const wordnet::SemanticNetwork& network, const std::string& label) = 0;
};

/// Everything the user can tune (the paper's Motivation 4): ambiguity
/// weights + selection threshold, sphere radius (context size),
/// semantic similarity measure weights, and the process combination.
struct DisambiguatorOptions {
  /// Node selection (paper §3.3).
  AmbiguityWeights ambiguity_weights;
  double ambiguity_threshold = 0.0;

  /// Context size: the sphere neighborhood radius d (paper §3.4).
  int sphere_radius = 2;

  /// Semantic similarity combination (Definition 9).
  sim::SimilarityWeights similarity_weights;

  /// Disambiguation process and, for kCombined, its weights (Eq. 13).
  DisambiguationProcess process = DisambiguationProcess::kConceptBased;
  CombinationWeights combination_weights;

  /// Vector comparison used by the context-based process (paper
  /// footnote 10: cosine by default, Jaccard as an alternative).
  VectorSimilarity vector_similarity = VectorSimilarity::kCosine;

  /// Structure-and-content (true) vs structure-only (false).
  bool include_values = true;

  /// Ablation switch: build spheres from structural nodes only,
  /// ignoring content tokens (disables the paper's
  /// structure-and-content context integration).
  bool structure_only_context = false;

  /// Ablation switch: treat the sphere context as a plain bag of words
  /// (uniform structural proximity), as prior approaches do.
  bool bag_of_words_context = false;

  /// Weight of the most-frequent-sense prior drawn from the weighted
  /// network SN-bar (the concept frequencies of paper Figure 2).
  /// Candidate scores receive + prior * freq(c)/max_freq(candidates),
  /// resolving low-signal contexts toward the corpus-dominant sense —
  /// the standard knowledge-based WSD backoff. 0 disables it.
  double frequency_prior = 0.15;

  /// Non-owning shared caches (both optional; installed by the runtime
  /// engine). `similarity_cache` replaces the combined measure's
  /// private memo table; `sense_inventory` replaces direct
  /// EnumerateCandidates() calls. Either may be shared across many
  /// Disambiguator instances/threads, in which case it must be
  /// thread-safe. They never change results — only where memoized
  /// values live.
  sim::SimilarityCacheHook* similarity_cache = nullptr;
  SenseInventory* sense_inventory = nullptr;
};

/// The sense assigned to one target node.
struct SenseAssignment {
  xml::NodeId node = xml::kInvalidNode;
  SenseCandidate sense;       ///< winning candidate
  double score = 0.0;         ///< its (combined) score
  double ambiguity = 0.0;     ///< the node's Amb_Deg
  int candidate_count = 0;    ///< size of the sense inventory examined
};

/// The semantic XML tree: the input labeled tree plus a concept
/// assignment for every disambiguated target node (paper Figure 4's
/// output). Non-target nodes remain untouched.
struct SemanticTree {
  xml::LabeledTree tree;
  std::unordered_map<xml::NodeId, SenseAssignment> assignments;
};

/// The XSDF pipeline (paper Figure 3): linguistic pre-processing ->
/// ambiguous-node selection -> sphere context construction -> hybrid
/// disambiguation.
class Disambiguator {
 public:
  /// `network` must outlive the disambiguator and have finalized
  /// frequencies.
  Disambiguator(const wordnet::SemanticNetwork* network,
                DisambiguatorOptions options = {});

  const DisambiguatorOptions& options() const { return options_; }

  /// Runs the full pipeline on a parsed document.
  Result<SemanticTree> Run(const xml::Document& doc) const;

  /// Runs the pipeline on an XML string.
  Result<SemanticTree> RunOnXml(const std::string& xml_text) const;

  /// Runs selection + disambiguation on an already-built tree.
  Result<SemanticTree> RunOnTree(xml::LabeledTree tree) const;

  /// Disambiguates a single node of `tree`; returns the winning
  /// assignment, or NotFound when the label has no candidate senses.
  Result<SenseAssignment> DisambiguateNode(const xml::LabeledTree& tree,
                                           xml::NodeId id) const;

  /// Scores every candidate sense of `id` (exposed for analysis and
  /// tests); parallel to EnumerateCandidates() order.
  std::vector<double> ScoreCandidates(const xml::LabeledTree& tree,
                                      xml::NodeId id) const;

 private:
  CombinationWeights EffectiveCombination() const;
  std::vector<SenseCandidate> CandidatesFor(const std::string& label) const;

  /// Scores an already-enumerated candidate list, resolving the node's
  /// sphere context once for all candidates (DisambiguateNode passes
  /// the list it fetched, avoiding a second sense-inventory lookup).
  std::vector<double> ScoreCandidatesImpl(
      const xml::LabeledTree& tree, xml::NodeId id,
      const std::vector<SenseCandidate>& candidates) const;

  const wordnet::SemanticNetwork* network_;
  DisambiguatorOptions options_;
  sim::CombinedMeasure measure_;
};

/// Renders a semantic tree as an annotated XML document: one element
/// per tree node carrying its label, kind, and — when disambiguated —
/// the assigned concept's label, id, and gloss. This is the
/// "semantically augmented XML tree" deliverable of the paper abstract.
std::string SemanticTreeToXml(const SemanticTree& semantic_tree,
                              const wordnet::SemanticNetwork& network);

}  // namespace xsdf::core

#endif  // XSDF_CORE_DISAMBIGUATOR_H_
