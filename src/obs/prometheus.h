#ifndef XSDF_OBS_PROMETHEUS_H_
#define XSDF_OBS_PROMETHEUS_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace xsdf::obs {

/// `name` rewritten to a legal Prometheus metric name: every character
/// outside [a-zA-Z0-9_:] becomes '_' (so "serve.request_us" ->
/// "serve_request_us"), prefixed with "xsdf_".
std::string PrometheusName(std::string_view name);

/// Renders a MetricsSnapshot in the Prometheus text exposition format
/// (version 0.0.4) — the `GET /metrics?format=prom` body:
///
///   counters   -> `# TYPE xsdf_<name>_total counter` + one sample
///   gauges     -> `# TYPE xsdf_<name> gauge` + one sample
///   histograms -> `# TYPE xsdf_<name> histogram` + cumulative
///                 `_bucket{le="<bound>"}` series ending in
///                 `le="+Inf"`, plus `_sum` and `_count`
///
/// Buckets are cumulative (each le-labeled sample counts everything at
/// or below that bound), `le="+Inf"` always equals `_count`, and the
/// output order follows the snapshot (name-sorted) so scrapes diff
/// cleanly. tools/validate_obs.py `prom` checks exactly this grammar.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

}  // namespace xsdf::obs

#endif  // XSDF_OBS_PROMETHEUS_H_
