#ifndef XSDF_EVAL_METRICS_H_
#define XSDF_EVAL_METRICS_H_

#include <vector>

namespace xsdf::eval {

/// Precision / recall / F-value of a disambiguation run against a gold
/// standard (paper §4.3).
struct PrfScores {
  double precision = 0.0;
  double recall = 0.0;
  double f_value = 0.0;
  int gold_total = 0;   ///< gold-annotated target nodes
  int attempted = 0;    ///< of those, nodes the system assigned a sense
  int correct = 0;      ///< of those, correct assignments
};

/// Computes P = correct/attempted, R = correct/gold_total,
/// F = 2PR/(P+R); zeros when denominators vanish.
PrfScores ComputePrf(int gold_total, int attempted, int correct);

/// Merges per-document counts into aggregate scores.
PrfScores CombinePrf(const std::vector<PrfScores>& parts);

/// Pearson's correlation coefficient between two equally sized samples
/// (paper §4.2); 0 when either sample is constant or sizes mismatch.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

}  // namespace xsdf::eval

#endif  // XSDF_EVAL_METRICS_H_
