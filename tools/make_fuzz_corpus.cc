// Regenerates the checked-in fuzz seed corpora (fuzz/corpus/{xml,
// wndb,tree}) from the deterministic generators in tests/prop. Run
// from the repo root:
//
//   ./build/tools/make_fuzz_corpus fuzz/corpus
//
// Seeds are derived from fixed Rng seeds, so the tool is idempotent:
// rerunning it produces byte-identical files, keeping corpus diffs
// reviewable. Handcrafted edge-case seeds live alongside the generated
// ones and are never overwritten (generated files carry a gen_ prefix).

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/strings.h"
#include "prop/generators.h"
#include "snapshot/snapshot.h"
#include "wordnet/wndb.h"

namespace {

bool WriteFile(const std::filesystem::path& path,
               const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
  if (!out.good()) {
    std::fprintf(stderr, "failed to write %s\n", path.string().c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-directory>\n", argv[0]);
    return 2;
  }
  namespace fs = std::filesystem;
  const fs::path root = argv[1];
  bool ok = true;

  // XML seeds: varied generator settings so the corpus starts with
  // documents exercising every construct the parser knows.
  fs::create_directories(root / "xml");
  {
    xsdf::Rng rng(0xc0597501);
    for (int i = 0; i < 24; ++i) {
      xsdf::propgen::XmlGenOptions gen;
      gen.max_depth = 2 + i % 6;
      gen.max_children = 1 + i % 5;
      gen.allow_cdata = i % 2 == 0;
      gen.allow_misc = i % 3 != 0;
      gen.allow_entities = i % 4 != 1;
      std::string doc = xsdf::propgen::GenerateXmlDocument(rng, gen);
      ok &= WriteFile(root / "xml" /
                          xsdf::StrFormat("gen_%02d.xml", i), doc);
    }
  }

  // WNDB seeds: packed file sets of generated mini-lexicons.
  fs::create_directories(root / "wndb");
  {
    xsdf::Rng rng(0xc0597502);
    for (int i = 0; i < 12; ++i) {
      xsdf::propgen::LexiconGenOptions gen;
      gen.min_concepts = 2 + i;
      gen.max_concepts = 6 + 2 * i;
      auto network = xsdf::propgen::GenerateMiniLexicon(rng, gen);
      auto files = xsdf::wordnet::WriteWndb(network);
      if (!files.ok()) {
        std::fprintf(stderr, "lexicon %d failed: %s\n", i,
                     files.status().ToString().c_str());
        ok = false;
        continue;
      }
      ok &= WriteFile(root / "wndb" /
                          xsdf::StrFormat("gen_%02d.wndb", i),
                      xsdf::propgen::PackWndbContainer(*files));
    }
  }

  // Tree seeds: one option-flag byte, then an XML document.
  fs::create_directories(root / "tree");
  {
    xsdf::Rng rng(0xc0597503);
    for (int i = 0; i < 12; ++i) {
      std::string doc = xsdf::propgen::GenerateXmlDocument(rng);
      std::string input;
      input += static_cast<char>(rng.UniformInt(256));
      input += doc;
      ok &= WriteFile(root / "tree" /
                          xsdf::StrFormat("gen_%02d.bin", i), input);
    }
  }

  // Snapshot seeds: valid snapshots of small finalized lexicons, plus
  // truncated and bit-flipped variants so the fuzzer starts from both
  // sides of every validation check instead of having to discover the
  // 64-byte header format byte by byte.
  fs::create_directories(root / "snapshot");
  {
    xsdf::Rng rng(0xc0597504);
    for (int i = 0; i < 6; ++i) {
      xsdf::propgen::LexiconGenOptions gen;
      gen.min_concepts = 2 + 2 * i;
      gen.max_concepts = 6 + 3 * i;
      auto network = xsdf::propgen::GenerateMiniLexicon(rng, gen);
      network.FinalizeFrequencies();
      auto bytes = xsdf::snapshot::WriteNetworkSnapshot(network);
      if (!bytes.ok()) {
        std::fprintf(stderr, "snapshot %d failed: %s\n", i,
                     bytes.status().ToString().c_str());
        ok = false;
        continue;
      }
      ok &= WriteFile(root / "snapshot" /
                          xsdf::StrFormat("gen_%02d.snap", i),
                      *bytes);
      if (i == 0) {
        // Truncations of the first snapshot: mid-header, mid-section
        // table, and mid-payload.
        for (size_t cut : {size_t{17}, size_t{64}, bytes->size() / 2,
                           bytes->size() - 3}) {
          ok &= WriteFile(
              root / "snapshot" /
                  xsdf::StrFormat("gen_trunc_%04zu.snap", cut),
              bytes->substr(0, cut));
        }
        // Deterministic bit flips spread across header, section table,
        // and payload.
        for (size_t pos : {size_t{8}, size_t{70},
                           bytes->size() / 3, 2 * bytes->size() / 3}) {
          std::string flipped = *bytes;
          flipped[pos % flipped.size()] =
              static_cast<char>(flipped[pos % flipped.size()] ^ 0x40);
          ok &= WriteFile(
              root / "snapshot" /
                  xsdf::StrFormat("gen_flip_%04zu.snap", pos),
              flipped);
        }
      }
    }
  }

  std::fprintf(stderr, "corpus written under %s\n",
               root.string().c_str());
  return ok ? 0 : 1;
}
