// Reproduces paper Table 3: characteristics of the ten test dataset
// families (documents, node counts, label polysemy, depth, fan-out,
// density).

#include <cstdio>

#include "eval/experiment.h"
#include "wordnet/mini_wordnet.h"

int main() {
  auto network = xsdf::wordnet::BuildMiniWordNet();
  if (!network.ok()) return 1;
  auto corpus = xsdf::eval::BuildCorpus(*network);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus: %s\n", corpus.status().ToString().c_str());
    return 1;
  }

  std::printf("Table 3. Characteristics of test documents.\n");
  std::printf("%-3s %-22s %-3s %-5s %-8s %-11s %-9s %-9s %-9s\n", "Ds",
              "Grammar", "Grp", "Docs", "AvgNode",
              "Polysemy", "Depth", "Fan-out", "Density");
  for (const auto& row : xsdf::eval::ComputeTable3(*corpus, *network)) {
    std::printf(
        "%-3d %-22s %-3d %-5d %-8.1f %5.2f/%-4d %4.2f/%-4d %4.2f/%-4d "
        "%4.2f/%-4d\n",
        row.info.id, row.info.grammar.c_str(), row.info.group,
        row.info.doc_count, row.avg_nodes, row.avg_polysemy,
        row.max_polysemy, row.avg_depth, row.max_depth, row.avg_fan_out,
        row.max_fan_out, row.avg_density, row.max_density);
  }
  std::printf("\nPaper reference: 10 families over 4 groups; Shakespeare "
              "largest (~192 nodes/doc,\nmax depth 6) and most polysemous "
              "(max 30); Group 4 families smallest and least\n"
              "ambiguous. Max polysemy overall: 33 senses ('head', "
              "WordNet 2.1), reproduced by\nthe mini-WordNet.\n");
  return 0;
}
