// libFuzzer entry point for the snapshot loader oracle (see
// harnesses.cc). The loader is the trust boundary for `xsdf serve
// --snapshot` and /admin/swap: a snapshot file is attacker-shaped
// input, and every truncation, bit flip, or hostile offset must come
// back as a Status — never a crash or an out-of-bounds read.
//
//   clang:  cmake -B build-fuzz -DXSDF_FUZZ=ON -DXSDF_ASAN_UBSAN=ON
//           ./build-fuzz/fuzz/fuzz_snapshot_loader fuzz/corpus/snapshot
//   gcc:    the same target builds with a standalone replay main();
//           pass corpus files as arguments to replay them.

#include "harnesses.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  xsdf::fuzz::DriveSnapshotLoader(data, size);
  return 0;
}
