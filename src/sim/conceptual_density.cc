#include "sim/conceptual_density.h"

#include <algorithm>
#include <unordered_map>

#include "sim/kernels.h"

namespace xsdf::sim {

namespace {

double DensityAt(uint32_t children, uint32_t descendants) {
  // descendants >= 1 always (every concept's closure contains itself).
  double density = (1.0 + static_cast<double>(children)) /
                   static_cast<double>(descendants);
  return density > 1.0 ? 1.0 : density;
}

}  // namespace

double ConceptualDensityMeasure::LegacySimilarity(
    const wordnet::SemanticNetwork& network, wordnet::ConceptId a,
    wordnet::ConceptId b) {
  if (a == b) return 1.0;
  std::unordered_map<wordnet::ConceptId, int> da =
      network.AncestorDistances(a);
  std::unordered_map<wordnet::ConceptId, int> db =
      network.AncestorDistances(b);
  // Counts for the common subsumers only, from per-concept closure
  // walks — the exact quantities the finalized table accumulates.
  std::unordered_map<wordnet::ConceptId, std::pair<uint32_t, uint32_t>>
      counts;  // subsumer -> (descendants, children)
  for (const auto& [anc, dist] : da) {
    if (db.count(anc) != 0) counts.emplace(anc, std::make_pair(0u, 0u));
  }
  if (counts.empty()) return 0.0;
  const int n = static_cast<int>(network.size());
  for (wordnet::ConceptId j = 0; j < n; ++j) {
    for (const auto& [anc, dist] : network.AncestorDistances(j)) {
      auto it = counts.find(anc);
      if (it == counts.end()) continue;
      ++it->second.first;
      if (dist == 1) ++it->second.second;
    }
  }
  double best = 0.0;
  for (const auto& [anc, dc] : counts) {
    best = std::max(best, DensityAt(dc.second, dc.first));
  }
  return best;
}

std::shared_ptr<const ConceptualDensityMeasure::SubtreeTable>
ConceptualDensityMeasure::TableFor(
    const wordnet::SemanticNetwork& network) const {
  std::lock_guard<std::mutex> lock(table_mu_);
  if (table_ == nullptr || table_->network != &network) {
    auto table = std::make_shared<SubtreeTable>();
    table->network = &network;
    const size_t n = network.size();
    table->descendants.assign(n, 0);
    table->children.assign(n, 0);
    for (size_t j = 0; j < n; ++j) {
      for (const wordnet::AncestorEntry& e :
           network.Ancestors(static_cast<wordnet::ConceptId>(j))) {
        ++table->descendants[static_cast<size_t>(e.id)];
        if (e.distance == 1) ++table->children[static_cast<size_t>(e.id)];
      }
    }
    table_ = std::move(table);
  }
  return table_;
}

double ConceptualDensityMeasure::Similarity(
    const wordnet::SemanticNetwork& network, wordnet::ConceptId a,
    wordnet::ConceptId b) const {
  if (a == b) return 1.0;
  if (!network.finalized()) return LegacySimilarity(network, a, b);
  std::shared_ptr<const SubtreeTable> table = TableFor(network);
  std::span<const wordnet::AncestorEntry> aa = network.Ancestors(a);
  std::span<const wordnet::AncestorEntry> ab = network.Ancestors(b);
  AncestorMatches common =
      IntersectAncestors(aa, ab, /*need_b_positions=*/false);
  // Max over the matched set is order-independent, and the intersect
  // finds the same matches at every SIMD level — bit-identical to the
  // legacy per-call walk, which tallies the same closure rows.
  double best = 0.0;
  for (size_t k = 0; k < common.count; ++k) {
    const size_t anc = static_cast<size_t>(aa[common.a[k]].id);
    best = std::max(best,
                    DensityAt(table->children[anc], table->descendants[anc]));
  }
  return best;
}

}  // namespace xsdf::sim
