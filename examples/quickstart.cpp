// Quickstart: disambiguate the paper's Figure 1 movie document
// end-to-end and print the semantically augmented XML tree.
//
//   build/examples/quickstart
//
// Walks through the whole public API surface: build the reference
// semantic network (through the genuine WNDB on-disk round trip, the
// way a deployment would consume WordNet), configure the
// disambiguator, run it on an XML string, inspect assignments, and
// serialize the semantic tree.

#include <cstdio>

#include "core/disambiguator.h"
#include "datasets/generator.h"
#include "wordnet/mini_wordnet.h"

int main() {
  // 1. Load the reference semantic network. BuildMiniWordNetViaWndb
  //    serializes the curated lexicon to WNDB files (data.noun,
  //    index.noun, cntlist.rev, ...) and parses them back — the same
  //    code path you would use with a real WordNet distribution via
  //    xsdf::wordnet::ParseWndbDirectory("/usr/share/wordnet/dict").
  auto network = xsdf::wordnet::BuildMiniWordNetViaWndb();
  if (!network.ok()) {
    std::fprintf(stderr, "failed to build the semantic network: %s\n",
                 network.status().ToString().c_str());
    return 1;
  }
  std::printf("Semantic network: %zu concepts, %zu lemmas, max polysemy "
              "%d\n\n",
              network->size(), network->LemmaCount(),
              network->MaxPolysemy());

  // 2. Configure XSDF. Everything the paper lets the user tune is in
  //    DisambiguatorOptions; the defaults follow the paper's
  //    experimental setup (equal similarity weights, concept-based).
  xsdf::core::DisambiguatorOptions options;
  options.sphere_radius = 2;      // context size d
  options.ambiguity_threshold = 0.0;  // disambiguate all target nodes
  xsdf::core::Disambiguator disambiguator(&*network, options);

  // 3. Run on the paper's Figure 1 document.
  const auto docs = xsdf::datasets::Figure1Documents();
  auto result = disambiguator.RunOnXml(docs[0].xml);
  if (!result.ok()) {
    std::fprintf(stderr, "disambiguation failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect assignments: which sense was chosen for each node?
  std::printf("%-14s %-18s %s\n", "node label", "chosen concept",
              "gloss");
  for (const auto& node : result->tree.nodes()) {
    auto it = result->assignments.find(node.id);
    if (it == result->assignments.end()) continue;
    const auto& concept_node =
        network->GetConcept(it->second.sense.primary);
    std::printf("%-14s %-18s %.58s\n", node.label.c_str(),
                concept_node.label().c_str(),
                concept_node.gloss.c_str());
  }

  // 5. Serialize the semantic XML tree (the paper's Figure 4 output).
  std::printf("\n--- semantic tree (truncated) ---\n%.1200s\n...\n",
              SemanticTreeToXml(*result, *network).c_str());
  return 0;
}
