# Empty dependencies file for xsdf_core.
# This may be replaced when dependencies are built.
