# Empty compiler generated dependencies file for xsdf_common.
# This may be replaced when dependencies are built.
