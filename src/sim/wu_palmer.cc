#include "sim/wu_palmer.h"

namespace xsdf::sim {

double WuPalmerMeasure::Similarity(const wordnet::SemanticNetwork& network,
                                   wordnet::ConceptId a,
                                   wordnet::ConceptId b) const {
  if (a == b) return 1.0;
  wordnet::ConceptId lcs = network.LeastCommonSubsumer(a, b);
  if (lcs == wordnet::kInvalidConcept) return 0.0;
  auto da = network.AncestorDistances(a);
  auto db = network.AncestorDistances(b);
  int len_a = da.at(lcs);
  int len_b = db.at(lcs);
  int depth_lcs = network.Depth(lcs);
  double denominator =
      static_cast<double>(len_a + len_b + 2 * depth_lcs);
  if (denominator <= 0.0) return 0.0;  // both are roots and disjoint
  return (2.0 * depth_lcs) / denominator;
}

}  // namespace xsdf::sim
