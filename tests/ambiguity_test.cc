// Tests for the ambiguity degree (paper §3.3): Propositions 1-3,
// Assumptions 1-4, the Definition 3 ratio, the compound special case,
// and threshold-based target selection.

#include <gtest/gtest.h>

#include "core/ambiguity.h"
#include "core/tree_builder.h"
#include "wordnet/mini_wordnet.h"
#include "xml/labeled_tree.h"

namespace xsdf::core {
namespace {

using wordnet::SemanticNetwork;
using xml::kInvalidNode;
using xml::LabeledTree;
using xml::NodeId;
using xml::TreeNodeKind;

const SemanticNetwork& Network() {
  static const SemanticNetwork* network = [] {
    auto result = wordnet::BuildMiniWordNet();
    return new SemanticNetwork(std::move(result).value());
  }();
  return *network;
}

/// Figure 5.a-style tree: picture with several distinct children.
LabeledTree RichTree() {
  LabeledTree tree;
  NodeId picture =
      tree.AddNode(kInvalidNode, "picture", TreeNodeKind::kElement);
  tree.AddNode(picture, "director", TreeNodeKind::kElement);
  NodeId cast = tree.AddNode(picture, "cast", TreeNodeKind::kElement);
  tree.AddNode(cast, "star", TreeNodeKind::kElement);
  tree.AddNode(cast, "star", TreeNodeKind::kElement);
  tree.AddNode(picture, "genre", TreeNodeKind::kElement);
  tree.AddNode(picture, "plot", TreeNodeKind::kElement);
  return tree;
}

/// Figure 5.b-style tree: picture with identical children labels.
LabeledTree PoorTree() {
  LabeledTree tree;
  NodeId picture =
      tree.AddNode(kInvalidNode, "picture", TreeNodeKind::kElement);
  for (int i = 0; i < 4; ++i) {
    tree.AddNode(picture, "star", TreeNodeKind::kElement);
  }
  return tree;
}

TEST(AmbiguityPolysemyTest, Proposition1Monotonicity) {
  // More senses -> higher polysemy factor.
  double head = AmbiguityPolysemy(Network(), "head");    // 33 senses
  double state = AmbiguityPolysemy(Network(), "state");  // 8 senses
  double genre = AmbiguityPolysemy(Network(), "genre");  // 2 senses
  EXPECT_GT(head, state);
  EXPECT_GT(state, genre);
  EXPECT_GT(genre, 0.0);
}

TEST(AmbiguityPolysemyTest, MaximalForMaxPolysemyWord) {
  // head carries Max(senses(SN)) -> factor exactly 1 (Eq. 1).
  EXPECT_DOUBLE_EQ(AmbiguityPolysemy(Network(), "head"), 1.0);
}

TEST(AmbiguityPolysemyTest, Assumption4MonosemousIsZero) {
  EXPECT_DOUBLE_EQ(AmbiguityPolysemy(Network(), "wheelchair"), 0.0);
  EXPECT_DOUBLE_EQ(AmbiguityPolysemy(Network(), "zzqq_xxyy"), 0.0);
}

TEST(AmbiguityPolysemyTest, CompoundAveragesTokens) {
  double movie = AmbiguityPolysemy(Network(), "movie");
  double star = AmbiguityPolysemy(Network(), "star");
  EXPECT_NEAR(AmbiguityPolysemy(Network(), "movie_star"),
              (movie + star) / 2.0, 1e-12);
}

TEST(AmbiguityDepthTest, Proposition2Monotonicity) {
  LabeledTree tree = RichTree();
  // Root is most ambiguous by depth; leaves least.
  EXPECT_DOUBLE_EQ(AmbiguityDepth(tree, 0), 1.0);
  EXPECT_GT(AmbiguityDepth(tree, 0), AmbiguityDepth(tree, 2));
  EXPECT_GT(AmbiguityDepth(tree, 2), AmbiguityDepth(tree, 3));
  EXPECT_DOUBLE_EQ(AmbiguityDepth(tree, 3), 0.0);  // max depth
}

TEST(AmbiguityDensityTest, Proposition3Monotonicity) {
  // Within one tree (the Eq. 3 normalizer is per-tree): the rich root
  // (4 distinct child labels) is less density-ambiguous than "cast",
  // whose two children share one label.
  LabeledTree rich = RichTree();
  EXPECT_LT(AmbiguityDensity(rich, 0), AmbiguityDensity(rich, 2));
  // And leaves (no children at all) are maximal.
  EXPECT_LT(AmbiguityDensity(rich, 2), AmbiguityDensity(rich, 3) + 1e-12);
}

TEST(AmbiguityDegreeTest, Figure5Intuition) {
  // Figure 5: "picture" over distinct children (director/cast/genre/
  // plot) vs over four identical "star" children. Put both shapes in
  // one tree so the per-tree normalizers cancel, then compare the two
  // picture nodes.
  LabeledTree tree;
  NodeId root = tree.AddNode(kInvalidNode, "collection",
                             TreeNodeKind::kElement);
  NodeId rich = tree.AddNode(root, "picture", TreeNodeKind::kElement);
  tree.AddNode(rich, "director", TreeNodeKind::kElement);
  tree.AddNode(rich, "cast", TreeNodeKind::kElement);
  tree.AddNode(rich, "genre", TreeNodeKind::kElement);
  tree.AddNode(rich, "plot", TreeNodeKind::kElement);
  NodeId poor = tree.AddNode(root, "picture", TreeNodeKind::kElement);
  for (int i = 0; i < 4; ++i) {
    tree.AddNode(poor, "star", TreeNodeKind::kElement);
  }
  EXPECT_LT(AmbiguityDegree(tree, rich, Network()),
            AmbiguityDegree(tree, poor, Network()));
}

TEST(AmbiguityDegreeTest, RangeAndAssumption4) {
  LabeledTree tree = RichTree();
  for (const auto& node : tree.nodes()) {
    double degree = AmbiguityDegree(tree, node.id, Network());
    EXPECT_GE(degree, 0.0);
    EXPECT_LE(degree, 1.0);
  }
  // "director" has several senses -> nonzero; a monosemous label is 0
  // regardless of structure (Assumption 4).
  LabeledTree mono;
  mono.AddNode(kInvalidNode, "wheelchair", TreeNodeKind::kElement);
  EXPECT_DOUBLE_EQ(AmbiguityDegree(mono, 0, Network()), 0.0);
}

TEST(AmbiguityDegreeTest, PolysemyWeightZeroDisables) {
  LabeledTree tree = RichTree();
  AmbiguityWeights weights;
  weights.polysemy = 0.0;
  for (const auto& node : tree.nodes()) {
    EXPECT_DOUBLE_EQ(AmbiguityDegree(tree, node.id, Network(), weights),
                     0.0);
  }
}

TEST(AmbiguityDegreeTest, DepthWeightRaisesShallowNodes) {
  LabeledTree tree = RichTree();
  AmbiguityWeights depth_on{1.0, 1.0, 0.0};
  AmbiguityWeights depth_off{1.0, 0.0, 0.0};
  // Eq. 4's denominator grows with (1 - Amb_Depth); for the root
  // (Amb_Depth = 1) the depth term vanishes, so both configs agree.
  EXPECT_NEAR(AmbiguityDegree(tree, 0, Network(), depth_on),
              AmbiguityDegree(tree, 0, Network(), depth_off), 1e-12);
  // For a deep node the depth term penalizes (deep = less ambiguous).
  EXPECT_LT(AmbiguityDegree(tree, 3, Network(), depth_on),
            AmbiguityDegree(tree, 3, Network(), depth_off));
}

TEST(AverageAmbiguityTest, EmptyTreeIsZero) {
  LabeledTree tree;
  EXPECT_DOUBLE_EQ(AverageAmbiguityDegree(tree, Network()), 0.0);
}

TEST(SelectTargetsTest, ThresholdZeroSelectsAllSenseBearing) {
  LabeledTree tree = RichTree();
  auto targets = SelectTargetNodes(tree, Network(), 0.0);
  // Every label of RichTree is in the lexicon.
  EXPECT_EQ(targets.size(), tree.size());
}

TEST(SelectTargetsTest, SenselessLabelsNeverSelected) {
  LabeledTree tree;
  tree.AddNode(kInvalidNode, "zzunknownzz", TreeNodeKind::kElement);
  EXPECT_TRUE(SelectTargetNodes(tree, Network(), 0.0).empty());
}

TEST(SelectTargetsTest, ThresholdMonotone) {
  LabeledTree tree = RichTree();
  size_t previous = tree.size() + 1;
  for (double threshold : {0.0, 0.01, 0.05, 0.2, 0.9}) {
    auto targets = SelectTargetNodes(tree, Network(), threshold);
    EXPECT_LE(targets.size(), previous);
    previous = targets.size();
  }
}

TEST(SelectTargetsTest, HighThresholdKeepsOnlyMostAmbiguous) {
  LabeledTree tree = PoorTree();
  // picture (5 senses, root, low density) should outrank star children
  // once thresholded near its own degree.
  double root_degree = AmbiguityDegree(tree, 0, Network());
  auto targets = SelectTargetNodes(tree, Network(), root_degree);
  ASSERT_FALSE(targets.empty());
  EXPECT_EQ(targets[0], 0);
}

TEST(LabelSenseTokensTest, SingleAndCompound) {
  EXPECT_EQ(LabelSenseTokens(Network(), "star"),
            (std::vector<std::string>{"star"}));
  // A collocation the lexicon knows stays whole.
  EXPECT_EQ(LabelSenseTokens(Network(), "first_name"),
            (std::vector<std::string>{"first_name"}));
  // An unknown compound splits.
  EXPECT_EQ(LabelSenseTokens(Network(), "movie_star"),
            (std::vector<std::string>{"movie", "star"}));
  EXPECT_TRUE(LabelSenseTokens(Network(), "").empty());
}

}  // namespace
}  // namespace xsdf::core
