#ifndef XSDF_XML_LABELED_TREE_H_
#define XSDF_XML_LABELED_TREE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/dom.h"

namespace xsdf::xml {

/// Index of a node inside a LabeledTree (its preorder rank, the paper's
/// `T[i]` notation).
using NodeId = int;
inline constexpr NodeId kInvalidNode = -1;

/// Sentinel for a node whose label has not been interned.
inline constexpr uint32_t kNoLabelId = 0xFFFFFFFFu;

/// What an XML construct a tree node was derived from.
enum class TreeNodeKind {
  kElement,    ///< an element tag
  kAttribute,  ///< an attribute name
  kToken,      ///< one token of an element/attribute text value
};

/// One node of a rooted ordered labeled tree (paper Definition 1).
struct TreeNode {
  NodeId id = kInvalidNode;         ///< preorder rank, T[i]
  std::string label;                ///< T[i].l — preprocessed label
  std::string raw;                  ///< original tag name / token text
  TreeNodeKind kind = TreeNodeKind::kElement;
  NodeId parent = kInvalidNode;
  std::vector<NodeId> children;
  int depth = 0;                    ///< T[i].d — edges from the root

  /// T[i].f — the node's fan-out.
  int fan_out() const { return static_cast<int>(children.size()); }
};

/// A rooted ordered labeled tree: the XML document model the XSDF
/// algorithms operate on (paper Definition 1). Nodes are stored in
/// preorder, so `node(i)` is exactly the paper's `T[i]`, and the root is
/// `T[0]`.
class LabeledTree {
 public:
  LabeledTree() = default;

  /// Appends a node. The first added node must be the root
  /// (`parent == kInvalidNode`); children must be added after their
  /// parent and in preorder so that ids equal preorder ranks. A call
  /// violating these preconditions returns kInvalidNode without
  /// modifying the tree (and traps in checked builds), so malformed
  /// construction fails recoverably in release binaries.
  NodeId AddNode(NodeId parent, std::string label, TreeNodeKind kind,
                 std::string raw = {});

  /// Same, with the label's interned id (core::LabelSpace). Trees whose
  /// every node carries an id run the id-based sphere/vector pipeline;
  /// a single id-less AddNode() drops the whole tree back to the
  /// string path (has_label_ids() turns false).
  NodeId AddNode(NodeId parent, std::string label, uint32_t label_id,
                 TreeNodeKind kind, std::string raw = {});

  /// Pre-sizes node storage (one parse knows its element count).
  void Reserve(size_t node_count) {
    nodes_.reserve(node_count);
    label_ids_.reserve(node_count);
  }

  /// Interned label of `id`, or kNoLabelId when never assigned.
  uint32_t label_id(NodeId id) const {
    return label_ids_[static_cast<size_t>(id)];
  }
  /// Per-node interned labels, parallel to nodes().
  std::span<const uint32_t> label_ids() const { return label_ids_; }
  /// True when every node carries an interned label id.
  bool has_label_ids() const {
    return missing_label_ids_ == 0 && !nodes_.empty();
  }
  /// Overwrites node `id`'s interned label (id assignment passes).
  void set_label_id(NodeId id, uint32_t label_id) {
    uint32_t& slot = label_ids_[static_cast<size_t>(id)];
    if ((slot == kNoLabelId) != (label_id == kNoLabelId)) {
      missing_label_ids_ += label_id == kNoLabelId ? 1 : -1;
    }
    slot = label_id;
  }

  /// Full structural-invariant audit: ids equal positions, parents
  /// precede children, depths are parent depth + 1, child lists and
  /// parent pointers agree, and every non-root node is linked exactly
  /// once. O(nodes + edges); used as a fuzzing/property-test oracle.
  Status Validate() const;

  bool empty() const { return nodes_.empty(); }
  size_t size() const { return nodes_.size(); }
  const TreeNode& node(NodeId id) const { return nodes_[static_cast<size_t>(id)]; }
  NodeId root() const { return nodes_.empty() ? kInvalidNode : 0; }

  const std::vector<TreeNode>& nodes() const { return nodes_; }

  /// Number of children of `id` carrying distinct labels — the paper's
  /// density factor x.f-bar (Proposition 3).
  int DistinctChildLabelCount(NodeId id) const;

  /// Max(depth(T)): the maximum node depth in the tree. Memoized after
  /// the first call (AddNode invalidates); the per-node ambiguity
  /// degree normalizes by this, and recomputing the maximum per target
  /// made giant-document disambiguation quadratic.
  int MaxDepth() const;
  /// Max(fan-out(T)): the maximum node fan-out in the tree. Memoized
  /// like MaxDepth().
  int MaxFanOut() const;
  /// Max(fan-out-bar(T)): the maximum distinct-child-label count.
  /// Memoized like MaxDepth() — the uncached scan hashes every child
  /// label of every node, by far the most expensive of the three.
  int MaxDensity() const;

  /// Number of edges on the path between `a` and `b` (Definition 4's
  /// Dist), computed via the lowest common ancestor.
  int Distance(NodeId a, NodeId b) const;

  /// Lowest common ancestor of `a` and `b`.
  NodeId LowestCommonAncestor(NodeId a, NodeId b) const;

  /// Nodes grouped by distance from `center`: element r of the result
  /// is the XML ring R_r(center) (Definition 4); element 0 is {center}.
  /// Rings are computed up to `max_distance` inclusive via BFS over the
  /// undirected tree adjacency.
  std::vector<std::vector<NodeId>> Rings(NodeId center,
                                         int max_distance) const;

  /// Node ids on the path from the root down to `id`, inclusive
  /// (the paper's root path, used by the RPD baseline).
  std::vector<NodeId> RootPath(NodeId id) const;

  /// All node ids in the subtree rooted at `id` (preorder).
  std::vector<NodeId> Subtree(NodeId id) const;

 private:
  /// A memo cell for the tree-wide maxima above. Reads and writes are
  /// relaxed atomics so that concurrent disambiguation of one tree
  /// (the engine's subtree work stealing) may race on the first
  /// computation: every racer derives the same value from the same
  /// immutable nodes, so the race is value-benign. Copyable so the
  /// tree keeps its implicit copy/move operations (a copy inherits
  /// the source's memo, which is equally valid for identical nodes).
  class CachedMax {
   public:
    static constexpr int kUnset = -1;
    CachedMax() = default;
    CachedMax(const CachedMax& other)
        : value_(other.value_.load(std::memory_order_relaxed)) {}
    CachedMax& operator=(const CachedMax& other) {
      value_.store(other.value_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
      return *this;
    }
    int load() const { return value_.load(std::memory_order_relaxed); }
    void store(int value) {
      value_.store(value, std::memory_order_relaxed);
    }
   private:
    std::atomic<int> value_{kUnset};
  };

  std::vector<TreeNode> nodes_;
  /// Interned label per node, parallel to nodes_ (kNoLabelId when the
  /// node was added without one).
  std::vector<uint32_t> label_ids_;
  size_t missing_label_ids_ = 0;  ///< count of kNoLabelId entries
  mutable CachedMax max_depth_;
  mutable CachedMax max_fan_out_;
  mutable CachedMax max_density_;
};

/// A preprocessed node label together with its interned id
/// (kNoLabelId when the producer interns nothing).
struct ResolvedLabel {
  std::string label;
  uint32_t id = kNoLabelId;
};

/// Controls DOM -> LabeledTree conversion.
struct TreeBuildOptions {
  /// Include attribute/element text values as token leaf nodes
  /// (structure-and-content); when false only tags are kept
  /// (structure-only). See paper §3.1.
  bool include_values = true;

  /// Maps a raw tag name to one or more node labels. The default
  /// lowercases the tag. XSDF's linguistic pre-processing (compound
  /// splitting, stemming) is plugged in here by the core pipeline.
  std::function<std::string(const std::string&)> label_transform;

  /// Splits a text value into token labels (one leaf node each). The
  /// default splits on whitespace and lowercases. XSDF's tokenizer,
  /// stop-word filter, and stemmer are plugged in here.
  std::function<std::vector<std::string>(const std::string&)>
      value_tokenizer;

  /// Interns a (transformed) label and returns its id; when set, every
  /// built node carries the id and the tree satisfies
  /// has_label_ids(). The core pipeline plugs core::LabelSpace in here.
  std::function<uint32_t(std::string_view)> label_resolver;

  /// Fused alternative to label_transform + label_resolver: maps a raw
  /// tag name straight to its preprocessed label and interned id, so a
  /// memoizing producer answers one hash probe per node instead of a
  /// transform probe plus a resolver probe. The returned reference
  /// must stay valid for the duration of the build (memo entries do).
  /// Takes precedence over the unfused hooks when set.
  std::function<const ResolvedLabel&(const std::string&)>
      resolved_label_transform;

  /// Fused alternative to value_tokenizer + label_resolver for text
  /// values, under the same reference-lifetime contract. Takes
  /// precedence over value_tokenizer when set.
  std::function<const std::vector<ResolvedLabel>&(const std::string&)>
      resolved_value_tokenizer;
};

/// Converts a parsed DOM into the rooted ordered labeled tree of
/// Definition 1: element nodes in document order, attribute nodes as
/// children sorted by attribute name before all sub-elements, and text
/// values tokenized into leaf token nodes.
Result<LabeledTree> BuildLabeledTree(const Document& doc,
                                     const TreeBuildOptions& options = {});

/// Same, but starting from an element subtree.
Result<LabeledTree> BuildLabeledTree(const Node& root_element,
                                     const TreeBuildOptions& options = {});

}  // namespace xsdf::xml

#endif  // XSDF_XML_LABELED_TREE_H_
