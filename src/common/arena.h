#ifndef XSDF_COMMON_ARENA_H_
#define XSDF_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <string_view>
#include <type_traits>
#include <utility>

namespace xsdf {

/// A chunked monotonic bump allocator: allocations are pointer bumps
/// into geometrically growing blocks, and nothing is freed until the
/// arena itself is destroyed. One arena backs one document's DOM +
/// labeled tree, so a parse costs a handful of block mallocs instead
/// of one heap allocation per node/attribute/string.
///
/// Objects with non-trivial destructors created through New<T>() are
/// registered on an arena-internal list and destroyed (in reverse
/// creation order) when the arena dies; trivially destructible types
/// pay nothing. CopyString() moves character data into the arena and
/// returns a view that lives exactly as long as the arena.
///
/// Thread-safety: none. An arena belongs to one document and is
/// mutated by one thread at a time (the engine's per-document
/// pipeline honours this).
class Arena {
 public:
  Arena() = default;
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&& other) noexcept { Swap(other); }
  Arena& operator=(Arena&& other) noexcept {
    if (this != &other) {
      Reset();
      Swap(other);
    }
    return *this;
  }

  /// Uninitialized storage of `size` bytes at `align` alignment.
  void* Allocate(size_t size, size_t align = alignof(std::max_align_t));

  /// Constructs a T in arena storage. Non-trivially-destructible types
  /// are registered for destruction when the arena is destroyed.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* storage = Allocate(sizeof(T), alignof(T));
    T* object = ::new (storage) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      RegisterOwned(object, [](void* p) { static_cast<T*>(p)->~T(); });
    }
    return object;
  }

  /// Copies `text` into the arena; the returned view is stable for the
  /// arena's lifetime. Empty input returns an empty view without
  /// touching the arena.
  std::string_view CopyString(std::string_view text) {
    if (text.empty()) return {};
    char* data = static_cast<char*>(Allocate(text.size(), 1));
    std::memcpy(data, text.data(), text.size());
    return std::string_view(data, text.size());
  }

  /// Destroys owned objects and releases every block, returning the
  /// arena to its freshly constructed state.
  void Reset();

  /// Bytes handed out by Allocate() (excludes block headers and the
  /// unused tail of the current block).
  size_t bytes_used() const { return bytes_used_; }
  /// Bytes of block capacity obtained from the heap.
  size_t bytes_reserved() const { return bytes_reserved_; }
  size_t block_count() const { return block_count_; }

 private:
  struct Block {
    Block* prev;
    size_t capacity;  ///< usable bytes after the header
  };
  struct Owned {
    void (*destroy)(void*);
    void* object;
    Owned* prev;
  };

  static constexpr size_t kFirstBlockBytes = 4096;
  static constexpr size_t kMaxBlockBytes = 256 * 1024;

  void* AllocateSlow(size_t size, size_t align);
  void RegisterOwned(void* object, void (*destroy)(void*));
  void Swap(Arena& other) noexcept;

  char* ptr_ = nullptr;   ///< next free byte in the current block
  char* end_ = nullptr;   ///< one past the current block's storage
  Block* head_ = nullptr;
  Owned* owned_ = nullptr;
  size_t next_block_bytes_ = kFirstBlockBytes;
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
  size_t block_count_ = 0;
};

}  // namespace xsdf

#endif  // XSDF_COMMON_ARENA_H_
