// Cold-start benchmark for the resident service mode: how long until
// `xsdf serve` can answer its first request, starting the lexicon from
// (a) the WNDB text files (parse + FinalizeFrequencies, what a fresh
// daemon without a snapshot pays) versus (b) the binary snapshot
// (mmap + validate + materialize the string-indexed structures, what
// `--snapshot` pays). Both paths end with the same first request
// through a 1-worker engine, and both answers must match byte for
// byte. Results go to stdout and to a JSON file (argv[1], default
// BENCH_serve.json); the snapshot path is expected to be >=10x faster
// and the measured ratio is recorded as `cold_start_speedup`.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "bench_env.h"
#include "datasets/generator.h"
#include "runtime/engine.h"
#include "snapshot/snapshot.h"
#include "wordnet/mini_wordnet.h"
#include "wordnet/wndb.h"

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// One request through a fresh 1-worker engine: the "first byte out"
/// half of cold start, identical for both lexicon paths.
std::string FirstRequest(const xsdf::wordnet::SemanticNetwork& network,
                         const std::string& xml) {
  xsdf::runtime::EngineOptions options;
  options.threads = 1;
  xsdf::runtime::DisambiguationEngine engine(&network, options);
  auto result = engine.TryRunOne({0, "bench", xml});
  if (!result.has_value() || !result->ok) return {};
  return result->semantic_xml;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_serve.json";
  namespace fs = std::filesystem;
  const fs::path work = fs::temp_directory_path() / "xsdf_bench_serve";
  fs::create_directories(work);
  const std::string wndb_dir = (work / "wndb").string();
  const std::string snap_path = (work / "lexicon.snap").string();

  // Stage the fixtures once (not timed): WNDB export + snapshot of the
  // same network, plus one document for the first request.
  {
    auto network = xsdf::wordnet::BuildMiniWordNet();
    if (!network.ok()) {
      std::fprintf(stderr, "%s\n", network.status().ToString().c_str());
      return 1;
    }
    fs::create_directories(wndb_dir);
    auto exported = xsdf::wordnet::WriteWndbToDirectory(*network, wndb_dir);
    if (!exported.ok()) {
      std::fprintf(stderr, "%s\n", exported.ToString().c_str());
      return 1;
    }
    // Snapshot the *parsed* WNDB network, not the in-memory build: the
    // WNDB round trip canonicalizes (lemma normalization, sense
    // regrouping), and both timed paths must serve the same lexicon.
    auto parsed = xsdf::wordnet::ParseWndbDirectory(wndb_dir);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    auto written = xsdf::snapshot::WriteNetworkSnapshotFile(*parsed,
                                                            snap_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
  }
  const std::string doc_xml = xsdf::datasets::Figure1Documents()[0].xml;

  // Best-of-N cold starts, alternating so neither path systematically
  // benefits from a warmer page cache. Lexicon readiness (the part the
  // snapshot format exists to shrink) and first answer (readiness plus
  // the shared engine construction + one document) are timed
  // separately; the 10x target applies to readiness.
  constexpr int kRounds = 5;
  double wndb_ready_ms = 0.0, snapshot_ready_ms = 0.0;
  double wndb_answer_ms = 0.0, snapshot_answer_ms = 0.0;
  std::string wndb_answer, snapshot_answer;
  for (int round = 0; round < kRounds; ++round) {
    {
      auto start = Clock::now();
      auto network = xsdf::wordnet::ParseWndbDirectory(wndb_dir);
      if (!network.ok()) {
        std::fprintf(stderr, "%s\n", network.status().ToString().c_str());
        return 1;
      }
      double ready_ms = MsSince(start);
      wndb_answer = FirstRequest(*network, doc_xml);
      double answer_ms = MsSince(start);
      if (round == 0 || ready_ms < wndb_ready_ms) wndb_ready_ms = ready_ms;
      if (round == 0 || answer_ms < wndb_answer_ms) {
        wndb_answer_ms = answer_ms;
      }
    }
    {
      auto start = Clock::now();
      auto network = xsdf::snapshot::LoadNetworkSnapshot(snap_path);
      if (!network.ok()) {
        std::fprintf(stderr, "%s\n", network.status().ToString().c_str());
        return 1;
      }
      double ready_ms = MsSince(start);
      snapshot_answer = FirstRequest(**network, doc_xml);
      double answer_ms = MsSince(start);
      if (round == 0 || ready_ms < snapshot_ready_ms) {
        snapshot_ready_ms = ready_ms;
      }
      if (round == 0 || answer_ms < snapshot_answer_ms) {
        snapshot_answer_ms = answer_ms;
      }
    }
  }
  if (wndb_answer.empty() || wndb_answer != snapshot_answer) {
    std::fprintf(stderr,
                 "cold-start answers diverge between lexicon paths\n");
    return 1;
  }
  double speedup =
      snapshot_ready_ms > 0.0 ? wndb_ready_ms / snapshot_ready_ms : 0.0;
  std::printf("cold start (best of %d):           lexicon ready  first answer\n",
              kRounds);
  std::printf("  %-30s %10.2f ms %10.2f ms\n", "wndb parse+finalize",
              wndb_ready_ms, wndb_answer_ms);
  std::printf("  %-30s %10.2f ms %10.2f ms\n", "snapshot mmap",
              snapshot_ready_ms, snapshot_answer_ms);
  std::printf("  readiness speedup: %.1fx%s\n", speedup,
              speedup < 10.0 ? "  (below the 10x target)" : "");

  std::FILE* json = std::fopen(json_path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(json, "{\n  \"rounds\": %d,\n", kRounds);
  xsdf::bench::WriteBenchEnvFields(json);
  std::fprintf(json, "  \"wndb_lexicon_ready_ms\": %.3f,\n", wndb_ready_ms);
  std::fprintf(json, "  \"snapshot_lexicon_ready_ms\": %.3f,\n",
               snapshot_ready_ms);
  std::fprintf(json, "  \"wndb_first_answer_ms\": %.3f,\n", wndb_answer_ms);
  std::fprintf(json, "  \"snapshot_first_answer_ms\": %.3f,\n",
               snapshot_answer_ms);
  std::fprintf(json, "  \"cold_start_speedup\": %.2f,\n", speedup);
  std::fprintf(json, "  \"answers_identical\": true\n}\n");
  std::fclose(json);
  std::printf("results written to %s\n", json_path);
  return 0;
}
