# Empty dependencies file for xsdf_wordnet.
# This may be replaced when dependencies are built.
