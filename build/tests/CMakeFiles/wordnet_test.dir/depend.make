# Empty dependencies file for wordnet_test.
# This may be replaced when dependencies are built.
