// Tests for candidate enumeration and the disambiguation scores
// (paper Definitions 8-10, Eqs. 8-13), including the compound special
// cases.

#include <gtest/gtest.h>

#include "core/scores.h"
#include "core/tree_builder.h"
#include "wordnet/mini_wordnet.h"

namespace xsdf::core {
namespace {

using wordnet::ConceptId;
using wordnet::SemanticNetwork;
using xml::kInvalidNode;
using xml::LabeledTree;
using xml::NodeId;
using xml::TreeNodeKind;

const SemanticNetwork& Network() {
  static const SemanticNetwork* network = [] {
    auto result = wordnet::BuildMiniWordNet();
    return new SemanticNetwork(std::move(result).value());
  }();
  return *network;
}

ConceptId Key(const char* key) {
  auto id = wordnet::MiniWordNetConceptByKey(key);
  EXPECT_TRUE(id.ok()) << key;
  return *id;
}

LabeledTree MovieTree() {
  LabeledTree tree;
  NodeId films = tree.AddNode(kInvalidNode, "film",
                              TreeNodeKind::kElement);
  NodeId picture = tree.AddNode(films, "picture", TreeNodeKind::kElement);
  NodeId cast = tree.AddNode(picture, "cast", TreeNodeKind::kElement);
  NodeId star1 = tree.AddNode(cast, "star", TreeNodeKind::kElement);
  tree.AddNode(star1, "stewart", TreeNodeKind::kToken);
  NodeId star2 = tree.AddNode(cast, "star", TreeNodeKind::kElement);
  tree.AddNode(star2, "kelly", TreeNodeKind::kToken);
  NodeId director = tree.AddNode(picture, "director",
                                 TreeNodeKind::kElement);
  tree.AddNode(director, "hitchcock", TreeNodeKind::kToken);
  return tree;
}

TEST(EnumerateCandidatesTest, SimpleLabel) {
  auto candidates = EnumerateCandidates(Network(), "star");
  EXPECT_EQ(candidates.size(),
            static_cast<size_t>(Network().SenseCount("star")));
  for (const SenseCandidate& candidate : candidates) {
    EXPECT_FALSE(candidate.is_compound());
  }
}

TEST(EnumerateCandidatesTest, UnknownLabelEmpty) {
  EXPECT_TRUE(EnumerateCandidates(Network(), "zzz_unknown").empty());
}

TEST(EnumerateCandidatesTest, LexiconCollocationStaysSimple) {
  auto candidates = EnumerateCandidates(Network(), "first_name");
  ASSERT_FALSE(candidates.empty());
  EXPECT_FALSE(candidates[0].is_compound());
}

TEST(EnumerateCandidatesTest, CompoundCartesianProduct) {
  auto candidates = EnumerateCandidates(Network(), "movie_star");
  size_t movie = static_cast<size_t>(Network().SenseCount("movie"));
  size_t star = static_cast<size_t>(Network().SenseCount("star"));
  EXPECT_EQ(candidates.size(), movie * star);
  for (const SenseCandidate& candidate : candidates) {
    EXPECT_TRUE(candidate.is_compound());
  }
}

TEST(EnumerateCandidatesTest, CompoundWithOneSenselessToken) {
  // "zz" has no senses; the compound degenerates to the other token.
  auto candidates = EnumerateCandidates(Network(), "zz_star");
  EXPECT_EQ(candidates.size(),
            static_cast<size_t>(Network().SenseCount("star")));
  EXPECT_FALSE(candidates[0].is_compound());
}

TEST(ConceptScoreTest, RangeAndDiscrimination) {
  LabeledTree tree = MovieTree();
  Sphere sphere = BuildXmlSphere(tree, 3, 2);  // around first "star"
  ContextVector vector(sphere);
  sim::CombinedMeasure measure;
  double performer = ConceptScore(
      Network(), measure, {Key("star.performer.n"), wordnet::kInvalidConcept},
      sphere, vector);
  double celestial = ConceptScore(
      Network(), measure, {Key("star.celestial.n"), wordnet::kInvalidConcept},
      sphere, vector);
  EXPECT_GE(performer, 0.0);
  EXPECT_LE(performer, 1.0);
  // Surrounded by cast/director/kelly/stewart, the performer sense
  // must beat the celestial body.
  EXPECT_GT(performer, celestial);
}

TEST(ConceptScoreTest, EmptySphereScoresZero) {
  LabeledTree tree;
  tree.AddNode(kInvalidNode, "star", TreeNodeKind::kElement);
  Sphere sphere = BuildXmlSphere(tree, 0, 2);  // only the center
  ContextVector vector(sphere);
  sim::CombinedMeasure measure;
  EXPECT_DOUBLE_EQ(
      ConceptScore(Network(), measure,
                   {Key("star.performer.n"), wordnet::kInvalidConcept},
                   sphere, vector),
      0.0);
}

TEST(ConceptScoreTest, CompoundCandidateAveragesPair) {
  LabeledTree tree = MovieTree();
  Sphere sphere = BuildXmlSphere(tree, 3, 2);
  ContextVector vector(sphere);
  sim::CombinedMeasure measure;
  SenseCandidate compound{Key("movie.n"), Key("star.performer.n")};
  double score = ConceptScore(Network(), measure, compound, sphere,
                              vector);
  EXPECT_GT(score, 0.0);
  EXPECT_LE(score, 1.0);
}

TEST(ContextScoreTest, MatchingDomainsScoreHigher) {
  LabeledTree tree = MovieTree();
  Sphere sphere = BuildXmlSphere(tree, 3, 2);
  ContextVector vector(sphere);
  double performer = ContextScore(
      Network(), {Key("star.performer.n"), wordnet::kInvalidConcept},
      vector, 2);
  double celestial = ContextScore(
      Network(), {Key("star.celestial.n"), wordnet::kInvalidConcept},
      vector, 2);
  EXPECT_GE(performer, 0.0);
  EXPECT_LE(performer, 1.0);
  EXPECT_GT(performer, celestial);
}

TEST(ContextScoreTest, CompoundUsesUnionSphere) {
  LabeledTree tree = MovieTree();
  ContextVector vector(BuildXmlSphere(tree, 3, 2));
  SenseCandidate compound{Key("movie.n"), Key("star.performer.n")};
  double score = ContextScore(Network(), compound, vector, 2);
  EXPECT_GE(score, 0.0);
  EXPECT_LE(score, 1.0);
}

TEST(CombinedScoreTest, Equation13Blend) {
  LabeledTree tree = MovieTree();
  Sphere sphere = BuildXmlSphere(tree, 3, 2);
  ContextVector vector(sphere);
  sim::CombinedMeasure measure;
  SenseCandidate candidate{Key("star.performer.n"),
                           wordnet::kInvalidConcept};
  double concept_score =
      ConceptScore(Network(), measure, candidate, sphere, vector);
  double context_score = ContextScore(Network(), candidate, vector, 2);
  double blended = CombinedScore(Network(), measure, candidate, sphere,
                                 vector, 2, {0.6, 0.4});
  EXPECT_NEAR(blended, 0.6 * concept_score + 0.4 * context_score, 1e-12);
  // Degenerate weights reduce to the individual scores.
  EXPECT_NEAR(CombinedScore(Network(), measure, candidate, sphere,
                            vector, 2, {1.0, 0.0}),
              concept_score, 1e-12);
  EXPECT_NEAR(CombinedScore(Network(), measure, candidate, sphere,
                            vector, 2, {0.0, 1.0}),
              context_score, 1e-12);
}

}  // namespace
}  // namespace xsdf::core
