file(REMOVE_RECURSE
  "CMakeFiles/xsdf_sim.dir/combined.cc.o"
  "CMakeFiles/xsdf_sim.dir/combined.cc.o.d"
  "CMakeFiles/xsdf_sim.dir/gloss_overlap.cc.o"
  "CMakeFiles/xsdf_sim.dir/gloss_overlap.cc.o.d"
  "CMakeFiles/xsdf_sim.dir/lin.cc.o"
  "CMakeFiles/xsdf_sim.dir/lin.cc.o.d"
  "CMakeFiles/xsdf_sim.dir/measure.cc.o"
  "CMakeFiles/xsdf_sim.dir/measure.cc.o.d"
  "CMakeFiles/xsdf_sim.dir/resnik.cc.o"
  "CMakeFiles/xsdf_sim.dir/resnik.cc.o.d"
  "CMakeFiles/xsdf_sim.dir/wu_palmer.cc.o"
  "CMakeFiles/xsdf_sim.dir/wu_palmer.cc.o.d"
  "libxsdf_sim.a"
  "libxsdf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsdf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
