#include "core/disambiguator.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/strings.h"
#include "core/tree_builder.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xsdf::core {

Disambiguator::Disambiguator(const wordnet::SemanticNetwork* network,
                             DisambiguatorOptions options)
    : network_(network),
      options_(options),
      measure_(options.EffectiveMeasureConfig()) {
  measure_.set_external_cache(options_.similarity_cache);
  if (options_.label_space != nullptr) {
    label_space_ = options_.label_space;
  } else {
    owned_label_space_ = std::make_unique<LabelSpace>(network_);
    label_space_ = owned_label_space_.get();
  }
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* m = options_.metrics;
    ins_.select_us = m->GetHistogram("stage.select_us");
    ins_.context_us = m->GetHistogram("stage.context_us");
    ins_.score_us = m->GetHistogram("stage.score_us");
    ins_.node_ambiguity_pct = m->GetHistogram(
        "core.node_ambiguity_pct",
        {10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
    ins_.node_candidates = m->GetHistogram(
        "core.node_candidates", {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64});
    ins_.node_margin_milli = m->GetHistogram(
        "core.node_top2_margin_milli",
        {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000});
  }
}

uint32_t Disambiguator::LabelIdFor(const xml::LabeledTree& tree,
                                   xml::NodeId id) const {
  if (tree.has_label_ids()) return tree.label_id(id);
  return label_space_->Resolve(tree.node(id).label);
}

std::shared_ptr<const SenseEntry> Disambiguator::CandidatesFor(
    const xml::LabeledTree& tree, xml::NodeId id) const {
  const std::string& label = tree.node(id).label;
  if (options_.sense_inventory != nullptr) {
    return options_.sense_inventory->Entry(*network_, LabelIdFor(tree, id),
                                           label);
  }
  auto entry = std::make_shared<SenseEntry>();
  if (options_.use_id_frontend && tree.has_label_ids()) {
    entry->candidates =
        EnumerateCandidatesById(*label_space_, tree.label_id(id));
  } else {
    entry->candidates = EnumerateCandidates(*network_, label);
  }
  return entry;
}

CombinationWeights Disambiguator::EffectiveCombination() const {
  switch (options_.process) {
    case DisambiguationProcess::kConceptBased:
      return {1.0, 0.0};
    case DisambiguationProcess::kContextBased:
      return {0.0, 1.0};
    case DisambiguationProcess::kCombined:
      return options_.combination_weights;
  }
  return {1.0, 0.0};
}

std::vector<double> Disambiguator::ScoreCandidates(
    const xml::LabeledTree& tree, xml::NodeId id) const {
  return ScoreCandidatesImpl(tree, id, CandidatesFor(tree, id)->candidates);
}

std::vector<double> Disambiguator::ScoreCandidatesImpl(
    const xml::LabeledTree& tree, xml::NodeId id,
    const std::vector<SenseCandidate>& candidates, StageAccum* accum,
    NodeAudit* audit) const {
  const uint64_t t_start = accum != nullptr ? obs::MonotonicNowNs() : 0;
  // The id front end needs per-node label ids; trees built without
  // them (ad-hoc callers) take the legacy string path, which is
  // bit-identical, just slower.
  const bool use_ids = options_.use_id_frontend && tree.has_label_ids();
  CombinationWeights combo = EffectiveCombination();
  // Build the sphere context and resolve its labels against the sense
  // index once; every candidate scores against the same resolved
  // context.
  ContextVector vector;
  std::optional<ResolvedContext> resolved;
  IdContextVector id_vector;
  std::optional<IdResolvedContext> id_resolved;
  if (use_ids) {
    // The sphere scratch is thread_local so batch workers scoring node
    // after node reuse its member buffer instead of reallocating it.
    thread_local IdSphere sphere;
    BuildXmlIdSphere(tree, tree.label_ids(), id, options_.sphere_radius,
                     options_.structure_only_context, &sphere);
    id_vector.Assign(sphere, options_.bag_of_words_context);
    id_resolved.emplace(*label_space_, sphere, id_vector);
  } else {
    Sphere sphere = BuildXmlSphere(tree, id, options_.sphere_radius,
                                   options_.structure_only_context);
    vector = ContextVector(sphere, options_.bag_of_words_context);
    resolved.emplace(*network_, sphere, vector);
  }
  uint64_t t_context = 0;
  if (accum != nullptr) {
    t_context = obs::MonotonicNowNs();
    accum->context_ns += t_context - t_start;
  }
  std::vector<double> scores;
  scores.reserve(candidates.size());
  for (const SenseCandidate& candidate : candidates) {
    // Keep the accumulation order exactly as the un-audited path had
    // it — audit capture must stay bit-identical.
    double score = 0.0;
    double concept_part = 0.0;
    double context_part = 0.0;
    if (combo.concept_weight > 0.0) {
      concept_part = use_ids
                         ? id_resolved->Score(*network_, measure_, candidate)
                         : resolved->Score(*network_, measure_, candidate);
      score += combo.concept_weight * concept_part;
    }
    if (combo.context_weight > 0.0) {
      context_part =
          use_ids ? IdContextScore(*network_, candidate, id_vector,
                                   options_.sphere_radius,
                                   options_.vector_similarity)
                  : ContextScore(*network_, candidate, vector,
                                 options_.sphere_radius,
                                 options_.vector_similarity);
      score += combo.context_weight * context_part;
    }
    if (audit != nullptr) {
      CandidateAudit entry;
      entry.sense = candidate;
      entry.concept_score = concept_part;
      entry.context_score = context_part;
      audit->candidates.push_back(entry);
    }
    scores.push_back(score);
  }
  if (options_.frequency_prior > 0.0 && !candidates.empty()) {
    // Most-frequent-sense prior from SN-bar, normalized within the
    // candidate inventory so it only breaks near-ties.
    auto candidate_frequency = [&](const SenseCandidate& c) {
      double f = network_->GetConcept(c.primary).frequency;
      if (c.is_compound()) {
        f = (f + network_->GetConcept(c.secondary).frequency) / 2.0;
      }
      return f;
    };
    double max_freq = 0.0;
    for (const SenseCandidate& c : candidates) {
      max_freq = std::max(max_freq, candidate_frequency(c));
    }
    // Normalize context scores to the top score first, so the prior is
    // a fixed-strength tie-breaker regardless of the absolute score
    // scale (which shrinks with sphere size).
    double max_score = 0.0;
    for (double s : scores) max_score = std::max(max_score, s);
    if (max_score > 0.0) {
      for (double& s : scores) s /= max_score;
    }
    if (max_freq > 0.0) {
      for (size_t i = 0; i < candidates.size(); ++i) {
        const double prior = options_.frequency_prior *
                             candidate_frequency(candidates[i]) / max_freq;
        scores[i] += prior;
        if (audit != nullptr) audit->candidates[i].prior = prior;
      }
    }
  }
  if (audit != nullptr) {
    for (size_t i = 0; i < scores.size(); ++i) {
      audit->candidates[i].total = scores[i];
    }
  }
  if (accum != nullptr) {
    accum->score_ns += obs::MonotonicNowNs() - t_context;
  }
  return scores;
}

Result<SenseAssignment> Disambiguator::DisambiguateNode(
    const xml::LabeledTree& tree, xml::NodeId id) const {
  return DisambiguateNodeImpl(tree, id, nullptr, nullptr);
}

Result<SenseAssignment> Disambiguator::DisambiguateNodeImpl(
    const xml::LabeledTree& tree, xml::NodeId id, StageAccum* accum,
    NodeAudit* audit) const {
  const std::string& label = tree.node(id).label;
  obs::Span node_span(options_.trace, "node",
                      options_.trace != nullptr ? label : std::string());
  std::shared_ptr<const SenseEntry> entry = CandidatesFor(tree, id);
  const std::vector<SenseCandidate>& candidates = entry->candidates;
  if (candidates.empty()) {
    return Status::NotFound("label has no senses in the network: " + label);
  }
  SenseAssignment assignment;
  assignment.node = id;
  assignment.candidate_count = static_cast<int>(candidates.size());
  assignment.ambiguity = AmbiguityDegree(tree, id, *network_,
                                         options_.ambiguity_weights);
  if (ins_.node_candidates != nullptr) {
    ins_.node_candidates->Record(candidates.size());
  }
  if (ins_.node_ambiguity_pct != nullptr) {
    ins_.node_ambiguity_pct->Record(
        static_cast<uint64_t>(std::lround(assignment.ambiguity * 100.0)));
  }
  if (audit != nullptr) {
    audit->node = id;
    audit->label = label;
    audit->ambiguity = assignment.ambiguity;
  }
  if (candidates.size() == 1) {
    assignment.sense = candidates[0];
    assignment.score = 1.0;
    if (audit != nullptr) {
      CandidateAudit only;
      only.sense = candidates[0];
      only.total = 1.0;
      audit->candidates.push_back(only);
      audit->chosen_index = 0;
    }
    return assignment;
  }
  std::vector<double> scores =
      ScoreCandidatesImpl(tree, id, candidates, accum, audit);
  size_t best = 0;
  for (size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > scores[best]) best = i;
  }
  double runner_up = 0.0;
  bool have_runner_up = false;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (i == best) continue;
    if (!have_runner_up || scores[i] > runner_up) {
      runner_up = scores[i];
      have_runner_up = true;
    }
  }
  const double margin = have_runner_up ? scores[best] - runner_up : 0.0;
  if (ins_.node_margin_milli != nullptr) {
    ins_.node_margin_milli->Record(static_cast<uint64_t>(
        std::lround(std::max(margin, 0.0) * 1000.0)));
  }
  if (audit != nullptr) {
    audit->chosen_index = static_cast<int>(best);
    audit->margin = margin;
  }
  assignment.sense = candidates[best];
  assignment.score = scores[best];
  return assignment;
}

Result<NodeAudit> Disambiguator::ExplainNode(const xml::LabeledTree& tree,
                                             xml::NodeId id) const {
  NodeAudit audit;
  auto assignment = DisambiguateNodeImpl(tree, id, nullptr, &audit);
  if (!assignment.ok()) return assignment.status();
  return audit;
}

std::vector<xml::NodeId> Disambiguator::SelectTargets(
    const xml::LabeledTree& tree) const {
  obs::StageTimer timer(ins_.select_us, options_.trace, "select");
  return SelectTargetNodes(tree, *network_, options_.ambiguity_threshold,
                           options_.ambiguity_weights);
}

Result<SemanticTree> Disambiguator::RunOnTree(xml::LabeledTree tree) const {
  // Trees handed in without interned labels get one id-assignment pass
  // up front, so every per-node sphere below runs on the id path.
  if (options_.use_id_frontend && !tree.has_label_ids()) {
    for (xml::NodeId id = 0; id < static_cast<xml::NodeId>(tree.size());
         ++id) {
      tree.set_label_id(id, label_space_->Resolve(tree.node(id).label));
    }
  }
  SemanticTree result;
  StageAccum accum;
  StageAccum* acc =
      (ins_.context_us != nullptr || ins_.score_us != nullptr) ? &accum
                                                               : nullptr;
  std::vector<xml::NodeId> targets = SelectTargets(tree);
  for (xml::NodeId id : targets) {
    auto assignment = DisambiguateNodeImpl(tree, id, acc, nullptr);
    if (!assignment.ok()) continue;  // senseless labels stay untouched
    result.assignments.emplace(id, std::move(assignment).value());
  }
  if (acc != nullptr) {
    // One sample per document: where this document's disambiguation
    // time went, split between context construction and scoring.
    if (ins_.context_us != nullptr) {
      ins_.context_us->Record((accum.context_ns + 500) / 1000);
    }
    if (ins_.score_us != nullptr) {
      ins_.score_us->Record((accum.score_ns + 500) / 1000);
    }
  }
  result.tree = std::move(tree);
  return result;
}

Result<SemanticTree> Disambiguator::Run(const xml::Document& doc) const {
  auto tree = BuildTree(doc, *network_, options_.include_values,
                        options_.use_id_frontend ? label_space_ : nullptr);
  if (!tree.ok()) return tree.status();
  return RunOnTree(std::move(tree).value());
}

Result<SemanticTree> Disambiguator::RunOnXml(
    const std::string& xml_text) const {
  auto doc = xml::Parse(xml_text);
  if (!doc.ok()) return doc.status();
  return Run(*doc);
}

namespace {

void AppendNodeXml(const SemanticTree& semantic_tree,
                   const wordnet::SemanticNetwork& network,
                   xml::NodeId id, xml::Node* parent) {
  const xml::TreeNode& node = semantic_tree.tree.node(id);
  xml::Node* element = parent->AddElement("node");
  element->AddAttribute("label", node.label);
  switch (node.kind) {
    case xml::TreeNodeKind::kElement:
      element->AddAttribute("kind", "element");
      break;
    case xml::TreeNodeKind::kAttribute:
      element->AddAttribute("kind", "attribute");
      break;
    case xml::TreeNodeKind::kToken:
      element->AddAttribute("kind", "token");
      break;
  }
  auto it = semantic_tree.assignments.find(id);
  if (it != semantic_tree.assignments.end()) {
    const SenseAssignment& assignment = it->second;
    const wordnet::Concept& c =
        network.GetConcept(assignment.sense.primary);
    element->AddAttribute("concept", c.label());
    element->AddAttribute("concept_id",
                          std::to_string(assignment.sense.primary));
    element->AddAttribute("gloss", c.gloss);
    if (assignment.sense.is_compound()) {
      const wordnet::Concept& c2 =
          network.GetConcept(assignment.sense.secondary);
      element->AddAttribute("concept2", c2.label());
      element->AddAttribute("concept2_id",
                            std::to_string(assignment.sense.secondary));
    }
    element->AddAttribute("score", StrFormat("%.4f", assignment.score));
  }
  for (xml::NodeId child : node.children) {
    AppendNodeXml(semantic_tree, network, child, element);
  }
}

}  // namespace

std::string SemanticTreeToXml(const SemanticTree& semantic_tree,
                              const wordnet::SemanticNetwork& network) {
  xml::Document doc;
  xml::Node* root = doc.NewElement("semantic_tree");
  if (!semantic_tree.tree.empty()) {
    AppendNodeXml(semantic_tree, network, semantic_tree.tree.root(), root);
  }
  doc.set_root(root);
  return xml::Serialize(doc);
}

namespace {

void AppendSenseJson(obs::JsonWriter* writer, const SenseCandidate& sense,
                     const wordnet::SemanticNetwork& network) {
  const wordnet::Concept& c = network.GetConcept(sense.primary);
  writer->Key("concept_id").Value(static_cast<int64_t>(sense.primary));
  writer->Key("concept").Value(c.label());
  writer->Key("gloss").Value(c.gloss);
  if (sense.is_compound()) {
    const wordnet::Concept& c2 = network.GetConcept(sense.secondary);
    writer->Key("concept2_id").Value(static_cast<int64_t>(sense.secondary));
    writer->Key("concept2").Value(c2.label());
  }
}

}  // namespace

void AppendNodeAuditFields(obs::JsonWriter* writer, const NodeAudit& audit,
                           const wordnet::SemanticNetwork& network) {
  writer->Key("node").Value(static_cast<int64_t>(audit.node));
  writer->Key("label").Value(audit.label);
  writer->Key("ambiguity").Value(audit.ambiguity);
  writer->Key("candidate_count")
      .Value(static_cast<int64_t>(audit.candidates.size()));
  writer->Key("margin").Value(audit.margin);
  if (audit.chosen_index >= 0 &&
      static_cast<size_t>(audit.chosen_index) < audit.candidates.size()) {
    const CandidateAudit& chosen =
        audit.candidates[static_cast<size_t>(audit.chosen_index)];
    writer->Key("chosen").BeginObject();
    AppendSenseJson(writer, chosen.sense, network);
    writer->Key("score").Value(chosen.total);
    writer->EndObject();
  }
  writer->Key("candidates").BeginArray();
  for (size_t i = 0; i < audit.candidates.size(); ++i) {
    const CandidateAudit& candidate = audit.candidates[i];
    writer->BeginObject();
    AppendSenseJson(writer, candidate.sense, network);
    writer->Key("concept_score").Value(candidate.concept_score);
    writer->Key("context_score").Value(candidate.context_score);
    writer->Key("prior").Value(candidate.prior);
    writer->Key("total").Value(candidate.total);
    writer->Key("chosen").Value(static_cast<int>(i) == audit.chosen_index);
    writer->EndObject();
  }
  writer->EndArray();
}

std::string NodeAuditToJson(const NodeAudit& audit,
                            const wordnet::SemanticNetwork& network) {
  obs::JsonWriter writer;
  writer.BeginObject();
  AppendNodeAuditFields(&writer, audit, network);
  writer.EndObject();
  return writer.TakeString();
}

}  // namespace xsdf::core
