#include "xml/tree_stats.h"

#include <algorithm>

namespace xsdf::xml {

TreeShape ComputeTreeShape(const LabeledTree& tree) {
  TreeShape shape;
  shape.node_count = static_cast<int>(tree.size());
  if (tree.empty()) return shape;
  double depth_sum = 0.0;
  double fan_out_sum = 0.0;
  double density_sum = 0.0;
  for (const TreeNode& node : tree.nodes()) {
    depth_sum += node.depth;
    fan_out_sum += node.fan_out();
    int density = tree.DistinctChildLabelCount(node.id);
    density_sum += density;
    shape.max_depth = std::max(shape.max_depth, node.depth);
    shape.max_fan_out = std::max(shape.max_fan_out, node.fan_out());
    shape.max_density = std::max(shape.max_density, density);
  }
  double n = static_cast<double>(tree.size());
  shape.avg_depth = depth_sum / n;
  shape.avg_fan_out = fan_out_sum / n;
  shape.avg_density = density_sum / n;
  return shape;
}

double StructDegree(const LabeledTree& tree, NodeId id,
                    const StructDegreeWeights& weights) {
  const TreeNode& node = tree.node(id);
  int max_depth = tree.MaxDepth();
  int max_fan_out = tree.MaxFanOut();
  int max_density = tree.MaxDensity();
  double depth_term =
      max_depth > 0 ? static_cast<double>(node.depth) / max_depth : 0.0;
  double fan_out_term =
      max_fan_out > 0 ? static_cast<double>(node.fan_out()) / max_fan_out
                      : 0.0;
  double density_term =
      max_density > 0
          ? static_cast<double>(tree.DistinctChildLabelCount(id)) /
                max_density
          : 0.0;
  return weights.depth * depth_term + weights.fan_out * fan_out_term +
         weights.density * density_term;
}

double AverageStructDegree(const LabeledTree& tree,
                           const StructDegreeWeights& weights) {
  if (tree.empty()) return 0.0;
  double sum = 0.0;
  for (const TreeNode& node : tree.nodes()) {
    sum += StructDegree(tree, node.id, weights);
  }
  return sum / static_cast<double>(tree.size());
}

}  // namespace xsdf::xml
