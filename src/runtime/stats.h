#ifndef XSDF_RUNTIME_STATS_H_
#define XSDF_RUNTIME_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace xsdf::runtime {

/// Point-in-time counters of one cache (similarity or sense
/// inventory). Hits/misses/evictions accumulate since construction or
/// the last ResetCounters(); entries/capacity describe current content.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Seqlock contention counters (always 0 for mutex-sharded caches):
  /// `read_retries` counts lookup validation rounds discarded because a
  /// writer overlapped; `write_collisions` counts failed attempts to
  /// take a set's sequence lock (another writer held it).
  uint64_t read_retries = 0;
  uint64_t write_collisions = 0;
  size_t entries = 0;
  size_t capacity = 0;
  size_t shards = 0;

  uint64_t lookups() const { return hits + misses; }
  /// Hit fraction in [0, 1]; 0 when no lookups happened.
  double HitRate() const {
    uint64_t total = lookups();
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Snapshot of an engine's lifetime counters (see
/// DisambiguationEngine::stats()). Counter fields reset via
/// ResetCounters(); cache *content* survives resets, which is how a
/// second pass over a corpus measures its warm hit rate.
struct EngineStats {
  uint64_t documents = 0;    ///< jobs completed (ok or failed)
  uint64_t failures = 0;     ///< jobs whose pipeline returned an error
  uint64_t nodes = 0;        ///< labeled-tree nodes across ok documents
  uint64_t assignments = 0;  ///< sense assignments across ok documents
  /// Actual worker-pool size (after `threads: 0` auto-detection).
  int worker_threads = 0;
  /// Intra-document parallelism: documents whose target list was
  /// chunked across workers, and chunks executed by a worker other
  /// than the document's owner (see EngineOptions::subtree_parallelism).
  uint64_t subtree_parallel_docs = 0;
  uint64_t subtree_steals = 0;
  /// High-water mark of per-document front-end scaffolding bytes (DOM
  /// arena reservation on the two-pass path; builder transient state
  /// on the streaming path). Not reset by ResetCounters() — it
  /// describes the worst document seen, not a rate.
  uint64_t frontend_peak_bytes = 0;
  CacheStats similarity_cache;
  CacheStats sense_cache;
};

/// One-line human-readable rendering of an EngineStats snapshot (the
/// `xsdf batch` stats summary format).
std::string FormatEngineStats(const EngineStats& stats);

}  // namespace xsdf::runtime

#endif  // XSDF_RUNTIME_STATS_H_
