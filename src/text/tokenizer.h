#ifndef XSDF_TEXT_TOKENIZER_H_
#define XSDF_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace xsdf::text {

/// Splits free text into lowercase word tokens.
///
/// A token is a maximal run of ASCII letters/digits; apostrophes inside
/// words are dropped ("wheelchair's" -> "wheelchairs" is *not* produced;
/// the possessive suffix is stripped: -> "wheelchair"). Punctuation and
/// whitespace separate tokens.
std::vector<std::string> Tokenize(std::string_view input);

/// True when `token` contains at least one letter (filters pure numbers
/// before dictionary lookups).
bool HasLetter(std::string_view token);

}  // namespace xsdf::text

#endif  // XSDF_TEXT_TOKENIZER_H_
