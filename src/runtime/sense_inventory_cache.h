#ifndef XSDF_RUNTIME_SENSE_INVENTORY_CACHE_H_
#define XSDF_RUNTIME_SENSE_INVENTORY_CACHE_H_

#include <string>
#include <vector>

#include "core/disambiguator.h"
#include "runtime/sharded_lru_cache.h"
#include "runtime/stats.h"

namespace xsdf::runtime {

/// Thread-safe sharded LRU over the sense inventory (preprocessed node
/// label -> candidate senses). Label -> candidates is a pure function
/// of the semantic network, so one cache instance must only ever be
/// used with a single network (the engine's contract — it owns one
/// network and one of these).
class SenseInventoryCache : public core::SenseInventory {
 public:
  explicit SenseInventoryCache(size_t capacity, size_t shard_count = 8);

  std::vector<core::SenseCandidate> Candidates(
      const wordnet::SemanticNetwork& network,
      const std::string& label) override;

  CacheStats GetStats() const { return cache_.GetStats(); }
  void ResetCounters() { cache_.ResetCounters(); }
  void Clear() { cache_.Clear(); }

 private:
  ShardedLruCache<std::string, std::vector<core::SenseCandidate>> cache_;
};

}  // namespace xsdf::runtime

#endif  // XSDF_RUNTIME_SENSE_INVENTORY_CACHE_H_
