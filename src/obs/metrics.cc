#include "obs/metrics.h"

#include <algorithm>

#include "obs/json_writer.h"

namespace xsdf::obs {

uint64_t HistogramSnapshot::ApproxPercentile(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(count));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) {
      return i < bounds.size() ? bounds[i] : max;
    }
  }
  return max;
}

bool HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (bounds != other.bounds || counts.size() != other.counts.size()) {
    return false;
  }
  for (size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  return true;
}

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)) {
  // The bucket search needs strictly increasing bounds; normalize once
  // at registration (sort + dedupe) instead of trusting every literal.
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  const size_t buckets = bounds_.size() + 1;
  for (Stripe& stripe : stripes_) {
    stripe.buckets = std::make_unique<std::atomic<uint64_t>[]>(buckets);
    for (size_t i = 0; i < buckets; ++i) {
      stripe.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

const std::vector<uint64_t>& Histogram::LatencyBoundsUs() {
  static const std::vector<uint64_t> bounds = {
      1,     2,     5,     10,     20,     50,     100,     200,     500,
      1000,  2000,  5000,  10000,  20000,  50000,  100000,  200000,  500000,
      1000000};
  return bounds;
}

void Histogram::Record(uint64_t value) {
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  Stripe& stripe = stripes_[MetricStripeIndex()];
  stripe.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  stripe.count.fetch_add(1, std::memory_order_relaxed);
  stripe.sum.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = stripe.max.load(std::memory_order_relaxed);
  while (seen < value &&
         !stripe.max.compare_exchange_weak(seen, value,
                                           std::memory_order_relaxed,
                                           std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.assign(bounds_.size() + 1, 0);
  for (const Stripe& stripe : stripes_) {
    for (size_t i = 0; i < snapshot.counts.size(); ++i) {
      snapshot.counts[i] += stripe.buckets[i].load(std::memory_order_relaxed);
    }
    snapshot.count += stripe.count.load(std::memory_order_relaxed);
    snapshot.sum += stripe.sum.load(std::memory_order_relaxed);
    snapshot.max =
        std::max(snapshot.max, stripe.max.load(std::memory_order_relaxed));
  }
  return snapshot;
}

void Histogram::Reset() {
  for (Stripe& stripe : stripes_) {
    for (size_t i = 0; i < bounds_.size() + 1; ++i) {
      stripe.buckets[i].store(0, std::memory_order_relaxed);
    }
    stripe.count.store(0, std::memory_order_relaxed);
    stripe.sum.store(0, std::memory_order_relaxed);
    stripe.max.store(0, std::memory_order_relaxed);
  }
}

bool MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  auto merge_scalars = [](auto* mine, const auto& theirs) {
    for (const auto& [name, value] : theirs) {
      auto it = std::find_if(mine->begin(), mine->end(),
                             [&](const auto& entry) {
                               return entry.first == name;
                             });
      if (it == mine->end()) {
        mine->push_back({name, value});
      } else {
        it->second += value;
      }
    }
  };
  merge_scalars(&counters, other.counters);
  merge_scalars(&gauges, other.gauges);
  for (const HistogramSnapshot& theirs : other.histograms) {
    auto it = std::find_if(histograms.begin(), histograms.end(),
                           [&](const HistogramSnapshot& mine) {
                             return mine.name == theirs.name;
                           });
    if (it == histograms.end()) {
      histograms.push_back(theirs);
    } else if (!it->Merge(theirs)) {
      return false;
    }
  }
  return true;
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("counters").BeginObject();
  for (const auto& [name, value] : counters) {
    writer.Key(name).Value(value);
  }
  writer.EndObject();
  writer.Key("gauges").BeginObject();
  for (const auto& [name, value] : gauges) {
    writer.Key(name).Value(value);
  }
  writer.EndObject();
  writer.Key("histograms").BeginObject();
  for (const HistogramSnapshot& histogram : histograms) {
    writer.Key(histogram.name).BeginObject();
    writer.Key("bounds").BeginArray();
    for (uint64_t bound : histogram.bounds) writer.Value(bound);
    writer.EndArray();
    writer.Key("counts").BeginArray();
    for (uint64_t bucket : histogram.counts) writer.Value(bucket);
    writer.EndArray();
    writer.Key("count").Value(histogram.count);
    writer.Key("sum").Value(histogram.sum);
    writer.Key("max").Value(histogram.max);
    writer.Key("mean").Value(histogram.Mean());
    writer.Key("p50").Value(histogram.ApproxPercentile(0.5));
    writer.Key("p99").Value(histogram.ApproxPercentile(0.99));
    writer.EndObject();
  }
  writer.EndObject();
  writer.EndObject();
  return writer.TakeString();
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         const std::vector<uint64_t>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name),
                             std::make_unique<Histogram>(bounds))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->Value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->Value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h = histogram->Snapshot();
    h.name = name;
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace xsdf::obs
