#ifndef XSDF_SERVE_ACCESS_LOG_H_
#define XSDF_SERVE_ACCESS_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>

#include "common/result.h"
#include "runtime/job_queue.h"

namespace xsdf::serve {

/// A structured JSONL access-log sink, built so the request path never
/// blocks on disk:
///
///   connection thread --(lock-free local buffer)--> Submit(chunk)
///       --(bounded queue, TryPush)--> writer thread --> fwrite
///
/// Each connection formats finished-request lines into its own
/// std::string (no shared state, no locks) and hands the accumulated
/// chunk over when it grows past the flush threshold or the connection
/// ends. Submit never blocks: when the writer falls behind and the
/// queue is full the chunk is dropped and counted — under overload the
/// daemon sheds log lines, not requests. `dropped()` is exported via
/// /stats so silent loss is visible.
class AccessLog {
 public:
  /// One entry per Submit() chunk; 256 chunks of up to ~4 KiB bounds
  /// the writer backlog at ~1 MiB.
  explicit AccessLog(std::string path, size_t queue_capacity = 256);
  ~AccessLog();

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Opens (appends to) the file and starts the writer thread. Call
  /// once before any Submit.
  Status Open();

  /// Hands a chunk of complete lines to the writer. Never blocks;
  /// full queue = chunk dropped and counted. Empty chunks are ignored.
  void Submit(std::string chunk);

  /// Connections flush their local buffer once it exceeds this many
  /// bytes (and always at connection end), so a busy keep-alive
  /// connection amortizes queue hand-offs without holding lines
  /// hostage for long.
  static constexpr size_t kFlushBytes = 4096;

  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  uint64_t written_chunks() const {
    return written_.load(std::memory_order_relaxed);
  }
  const std::string& path() const { return path_; }

 private:
  void WriterLoop();

  std::string path_;
  runtime::BoundedJobQueue<std::string> queue_;
  std::FILE* file_ = nullptr;
  std::thread writer_;
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> written_{0};
};

}  // namespace xsdf::serve

#endif  // XSDF_SERVE_ACCESS_LOG_H_
