// Serve subsystem tests: the HTTP front end answers byte-identically
// to the engine, sheds load with 429/504 instead of blocking, and hot
// lexicon swaps never mix generations within a response.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datasets/generator.h"
#include "runtime/engine.h"
#include "serve/http.h"
#include "sim/measure_config.h"
#include "serve/server.h"
#include "snapshot/snapshot.h"
#include "wordnet/mini_wordnet.h"
#include "wordnet/semantic_network.h"

namespace xsdf {
namespace {

using serve::ClientResponse;
using serve::HttpCall;
using serve::ServeOptions;
using serve::Server;
using wordnet::ConceptId;
using wordnet::PartOfSpeech;
using wordnet::Relation;
using wordnet::SemanticNetwork;

constexpr const char* kHost = "127.0.0.1";
constexpr int kClientTimeoutMs = 30000;

/// A tiny entity -> animal -> {cat, dog} taxonomy. `shift` prepends
/// dummy concepts, shifting every real concept id — two networks built
/// with different shifts produce different concept_id attributes for
/// the same document, which is how the swap test tells generations
/// apart by body alone.
std::shared_ptr<const SemanticNetwork> BuildTinyTaxonomy(int shift) {
  auto network = std::make_shared<SemanticNetwork>();
  for (int i = 0; i < shift; ++i) {
    network->AddConcept(PartOfSpeech::kNoun, {"padding_" + std::to_string(i)},
                        "filler concept to shift ids");
  }
  ConceptId entity = network->AddConcept(PartOfSpeech::kNoun, {"entity"},
                                         "that which is perceived");
  ConceptId animal = network->AddConcept(
      PartOfSpeech::kNoun, {"animal", "beast"}, "a living organism");
  ConceptId cat = network->AddConcept(PartOfSpeech::kNoun, {"cat", "feline"},
                                      "a small domesticated mammal");
  ConceptId dog = network->AddConcept(PartOfSpeech::kNoun, {"dog", "canine"},
                                      "a domesticated carnivorous mammal");
  network->AddEdge(animal, Relation::kHypernym, entity);
  network->AddEdge(cat, Relation::kHypernym, animal);
  network->AddEdge(dog, Relation::kHypernym, animal);
  network->SetFrequency(entity, 10.0);
  network->SetFrequency(animal, 6.0);
  network->SetFrequency(cat, 3.0);
  network->SetFrequency(dog, 2.0);
  network->FinalizeFrequencies();
  return network;
}

std::shared_ptr<const SemanticNetwork> MiniNetwork() {
  Result<SemanticNetwork> result = wordnet::BuildMiniWordNet();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::make_shared<SemanticNetwork>(std::move(result).value());
}

/// Runs `server` on a background thread for the scope of a test.
class ServerRunner {
 public:
  explicit ServerRunner(Server* server) : server_(server) {
    thread_ = std::thread([this] { server_->Run(); });
  }
  ~ServerRunner() {
    server_->RequestShutdown();
    thread_.join();
  }

 private:
  Server* server_;
  std::thread thread_;
};

std::string EngineAnswer(const SemanticNetwork& network,
                         const std::string& xml) {
  runtime::EngineOptions options;
  options.threads = 1;
  runtime::DisambiguationEngine engine(&network, options);
  std::vector<runtime::DocumentResult> results =
      engine.RunBatch({{0, "request", xml}});
  EXPECT_TRUE(results[0].ok) << results[0].error;
  return results[0].semantic_xml;
}

TEST(ServeTest, DisambiguateMatchesEngineByteForByte) {
  auto network = MiniNetwork();
  ServeOptions options;
  options.port = 0;
  options.engine.threads = 2;
  Server server(options);
  ASSERT_TRUE(server.InstallLexicon(network, "mini").ok());
  ASSERT_TRUE(server.Start().ok());
  ServerRunner runner(&server);

  const std::string xml =
      "<patient><name>rex</name><condition>rabies</condition>"
      "<doctor>smith</doctor></patient>";
  auto response = HttpCall(kHost, server.port(), "POST", "/disambiguate",
                           {}, xml, kClientTimeoutMs);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, EngineAnswer(*network, xml));
  EXPECT_EQ(response->headers.at("x-xsdf-generation"), "1");
  EXPECT_EQ(response->headers.at("x-xsdf-lexicon"), "mini");
}

TEST(ServeTest, RejectsBadInputAndUnknownRoutes) {
  auto network = BuildTinyTaxonomy(0);
  ServeOptions options;
  options.port = 0;
  options.engine.threads = 1;
  Server server(options);
  ASSERT_TRUE(server.InstallLexicon(network, "tiny").ok());
  ASSERT_TRUE(server.Start().ok());
  ServerRunner runner(&server);

  auto bad_xml = HttpCall(kHost, server.port(), "POST", "/disambiguate", {},
                          "<unclosed>", kClientTimeoutMs);
  ASSERT_TRUE(bad_xml.ok()) << bad_xml.status().ToString();
  EXPECT_EQ(bad_xml->status, 400);

  auto wrong_method = HttpCall(kHost, server.port(), "GET", "/disambiguate",
                               {}, "", kClientTimeoutMs);
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status, 405);

  auto unknown = HttpCall(kHost, server.port(), "GET", "/nope", {}, "",
                          kClientTimeoutMs);
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->status, 404);

  auto health = HttpCall(kHost, server.port(), "GET", "/healthz", {}, "",
                         kClientTimeoutMs);
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);
}

TEST(ServeTest, DeadlineAlreadyExpiredReturns504) {
  auto network = BuildTinyTaxonomy(0);
  ServeOptions options;
  options.port = 0;
  options.engine.threads = 1;
  Server server(options);
  ASSERT_TRUE(server.InstallLexicon(network, "tiny").ok());
  ASSERT_TRUE(server.Start().ok());
  ServerRunner runner(&server);

  auto response = HttpCall(kHost, server.port(), "POST", "/disambiguate",
                           {{"X-Xsdf-Deadline-Ms", "0"}},
                           "<animal><cat/></animal>", kClientTimeoutMs);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 504);
}

TEST(ServeTest, OverloadShedsWith429) {
  auto network = MiniNetwork();
  ServeOptions options;
  options.port = 0;
  options.engine.threads = 1;
  options.engine.queue_capacity = 1;
  Server server(options);
  ASSERT_TRUE(server.InstallLexicon(network, "mini").ok());
  ASSERT_TRUE(server.Start().ok());
  ServerRunner runner(&server);

  // A chunky document so the single worker stays busy while the other
  // clients arrive. With capacity 1 at most two requests are in the
  // system; the rest must be rejected, never blocked.
  std::string xml = "<hospital>";
  for (int i = 0; i < 12; ++i) {
    xml += "<patient><condition>cold</condition><doctor>head</doctor>"
           "<bank>blood</bank></patient>";
  }
  xml += "</hospital>";

  std::atomic<int> ok_count{0};
  std::atomic<int> rejected_count{0};
  std::atomic<int> other_count{0};
  for (int round = 0; round < 5 && rejected_count.load() == 0; ++round) {
    std::vector<std::thread> clients;
    for (int i = 0; i < 8; ++i) {
      clients.emplace_back([&] {
        auto response = HttpCall(kHost, server.port(), "POST",
                                 "/disambiguate", {}, xml, kClientTimeoutMs);
        if (!response.ok()) {
          ++other_count;
        } else if (response->status == 200) {
          ++ok_count;
        } else if (response->status == 429) {
          ++rejected_count;
        } else {
          ++other_count;
        }
      });
    }
    for (std::thread& client : clients) client.join();
  }
  EXPECT_EQ(other_count.load(), 0);
  EXPECT_GT(ok_count.load(), 0);
  EXPECT_GT(rejected_count.load(), 0)
      << "no request was shed across 5 rounds of 8 concurrent clients";
}

TEST(ServeTest, MetricsAndStatsEndpoints) {
  auto network = MiniNetwork();
  obs::MetricsRegistry registry;
  ServeOptions options;
  options.port = 0;
  options.engine.threads = 1;
  options.metrics = &registry;
  Server server(options);
  ASSERT_TRUE(server.InstallLexicon(network, "mini").ok());
  ASSERT_TRUE(server.Start().ok());
  ServerRunner runner(&server);

  auto doc = HttpCall(kHost, server.port(), "POST", "/disambiguate", {},
                      "<animal><cat/></animal>", kClientTimeoutMs);
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->status, 200);

  auto metrics = HttpCall(kHost, server.port(), "GET", "/metrics", {}, "",
                          kClientTimeoutMs);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->body.find("engine.documents"), std::string::npos);
  EXPECT_NE(metrics->body.find("stage.parse_us"), std::string::npos);
  EXPECT_NE(metrics->body.find("serve.requests"), std::string::npos);

  auto stats = HttpCall(kHost, server.port(), "GET", "/stats", {}, "",
                        kClientTimeoutMs);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->status, 200);
  EXPECT_NE(stats->body.find("\"generation\""), std::string::npos);
}

TEST(ServeTest, ExplainReturnsAuditJson) {
  auto network = MiniNetwork();
  ServeOptions options;
  options.port = 0;
  options.engine.threads = 1;
  Server server(options);
  ASSERT_TRUE(server.InstallLexicon(network, "mini").ok());
  ASSERT_TRUE(server.Start().ok());
  ServerRunner runner(&server);

  auto response = HttpCall(
      kHost, server.port(), "POST", "/explain?node=condition", {},
      "<patient><condition>rabies</condition><doctor>smith</doctor>"
      "</patient>",
      kClientTimeoutMs);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_NE(response->body.find("\"query\""), std::string::npos);
  EXPECT_NE(response->body.find("\"nodes\""), std::string::npos);

  auto missing = HttpCall(kHost, server.port(), "POST", "/explain", {},
                          "<a/>", kClientTimeoutMs);
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 400);
}

/// Hot swap under concurrent load: every response must match the
/// expected output of exactly the generation named in its header —
/// zero dropped requests, zero mixed-lexicon responses.
TEST(ServeTest, HotSwapUnderLoadNeverMixesLexicons) {
  auto network_a = BuildTinyTaxonomy(0);
  auto network_b = BuildTinyTaxonomy(3);
  const std::string xml =
      "<animal><cat><head>round</head></cat><dog><tail>long</tail></dog>"
      "</animal>";
  const std::string expected_a = EngineAnswer(*network_a, xml);
  const std::string expected_b = EngineAnswer(*network_b, xml);
  ASSERT_NE(expected_a, expected_b)
      << "id shift failed to change the serialized output";

  ServeOptions options;
  options.port = 0;
  options.engine.threads = 2;
  options.engine.queue_capacity = 64;
  Server server(options);
  ASSERT_TRUE(server.InstallLexicon(network_a, "lexicon-a").ok());
  ASSERT_TRUE(server.Start().ok());
  ServerRunner runner(&server);

  std::atomic<bool> done{false};
  std::atomic<int> mixed{0};
  std::atomic<int> failed{0};
  std::atomic<int> served_a{0};
  std::atomic<int> served_b{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        auto response = HttpCall(kHost, server.port(), "POST",
                                 "/disambiguate", {}, xml, kClientTimeoutMs);
        if (!response.ok() || response->status != 200) {
          ++failed;
          continue;
        }
        const std::string& generation =
            response->headers.at("x-xsdf-generation");
        if (generation == "1") {
          if (response->body != expected_a) ++mixed;
          ++served_a;
        } else if (generation == "2") {
          if (response->body != expected_b) ++mixed;
          ++served_b;
        } else {
          ++mixed;
        }
      }
    });
  }

  // Let generation 1 serve some traffic, swap, let generation 2 serve.
  while (served_a.load() < 8) std::this_thread::yield();
  ASSERT_TRUE(server.InstallLexicon(network_b, "lexicon-b").ok());
  EXPECT_EQ(server.generation(), 2u);
  while (served_b.load() < 8) std::this_thread::yield();
  done.store(true);
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(mixed.load(), 0);
  EXPECT_EQ(failed.load(), 0);
  EXPECT_GE(served_a.load(), 8);
  EXPECT_GE(served_b.load(), 8);
}

TEST(ServeTest, AdminSwapLoadsSnapshotFile) {
  auto network_a = BuildTinyTaxonomy(0);
  auto network_b = BuildTinyTaxonomy(3);
  std::filesystem::path path =
      std::filesystem::temp_directory_path() / "xsdf_serve_swap.snap";
  ASSERT_TRUE(
      snapshot::WriteNetworkSnapshotFile(*network_b, path.string()).ok());

  const std::string xml = "<animal><cat/><dog/></animal>";
  const std::string expected_b = EngineAnswer(*network_b, xml);

  ServeOptions options;
  options.port = 0;
  options.engine.threads = 1;
  Server server(options);
  ASSERT_TRUE(server.InstallLexicon(network_a, "tiny-a").ok());
  ASSERT_TRUE(server.Start().ok());
  ServerRunner runner(&server);

  auto swap = HttpCall(kHost, server.port(), "POST",
                       "/admin/swap?snapshot=" + path.string(), {}, "",
                       kClientTimeoutMs);
  ASSERT_TRUE(swap.ok()) << swap.status().ToString();
  EXPECT_EQ(swap->status, 200);
  EXPECT_NE(swap->body.find("\"generation\": 2"), std::string::npos);

  auto response = HttpCall(kHost, server.port(), "POST", "/disambiguate",
                           {}, xml, kClientTimeoutMs);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, expected_b);
  EXPECT_EQ(response->headers.at("x-xsdf-generation"), "2");

  auto missing = HttpCall(kHost, server.port(), "POST",
                          "/admin/swap?snapshot=/no/such/file.snap", {}, "",
                          kClientTimeoutMs);
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 400);
  // Loader detail stays in the server log; the client only learns the
  // load failed, not why (no filesystem probing oracle).
  EXPECT_EQ(missing->body, "cannot load snapshot\n");
  std::filesystem::remove(path);
}

TEST(ServeTest, AdminSwapEnforcesTokenAndSnapshotDirectory) {
  auto network_a = BuildTinyTaxonomy(0);
  auto network_b = BuildTinyTaxonomy(3);
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "xsdf_serve_admin_dir";
  std::filesystem::create_directories(dir);
  std::filesystem::path inside = dir / "inside.snap";
  std::filesystem::path outside =
      std::filesystem::temp_directory_path() / "xsdf_serve_outside.snap";
  ASSERT_TRUE(
      snapshot::WriteNetworkSnapshotFile(*network_b, inside.string()).ok());
  ASSERT_TRUE(
      snapshot::WriteNetworkSnapshotFile(*network_b, outside.string()).ok());

  ServeOptions options;
  options.port = 0;
  options.engine.threads = 1;
  options.admin_snapshot_dir = dir.string();
  options.admin_token = "sesame";
  Server server(options);
  ASSERT_TRUE(server.InstallLexicon(network_a, "tiny-a").ok());
  ASSERT_TRUE(server.Start().ok());
  ServerRunner runner(&server);

  auto no_token =
      HttpCall(kHost, server.port(), "POST",
               "/admin/swap?snapshot=" + inside.string(), {}, "",
               kClientTimeoutMs);
  ASSERT_TRUE(no_token.ok()) << no_token.status().ToString();
  EXPECT_EQ(no_token->status, 403);

  const std::vector<std::pair<std::string, std::string>> auth = {
      {"X-Xsdf-Admin-Token", "sesame"}};
  auto escape =
      HttpCall(kHost, server.port(), "POST",
               "/admin/swap?snapshot=" + outside.string(), auth, "",
               kClientTimeoutMs);
  ASSERT_TRUE(escape.ok());
  EXPECT_EQ(escape->status, 403);

  auto traversal = HttpCall(
      kHost, server.port(), "POST",
      "/admin/swap?snapshot=" +
          (dir / ".." / "xsdf_serve_outside.snap").string(),
      auth, "", kClientTimeoutMs);
  ASSERT_TRUE(traversal.ok());
  EXPECT_EQ(traversal->status, 403);
  EXPECT_EQ(server.generation(), 1u);

  auto swap = HttpCall(kHost, server.port(), "POST",
                       "/admin/swap?snapshot=" + inside.string(), auth, "",
                       kClientTimeoutMs);
  ASSERT_TRUE(swap.ok());
  EXPECT_EQ(swap->status, 200);
  EXPECT_EQ(server.generation(), 2u);

  std::filesystem::remove_all(dir);
  std::filesystem::remove(outside);
}

TEST(ServeTest, RequestIdIsEchoedOrGenerated) {
  auto network = BuildTinyTaxonomy(0);
  ServeOptions options;
  options.port = 0;
  options.engine.threads = 1;
  Server server(options);
  ASSERT_TRUE(server.InstallLexicon(network, "tiny").ok());
  ASSERT_TRUE(server.Start().ok());
  ServerRunner runner(&server);

  // A well-formed client id (16 hex digits) is honored verbatim.
  auto supplied = HttpCall(kHost, server.port(), "POST", "/disambiguate",
                           {{"X-Xsdf-Request-Id", "00000000deadbeef"}},
                           "<animal><cat/></animal>", kClientTimeoutMs);
  ASSERT_TRUE(supplied.ok()) << supplied.status().ToString();
  EXPECT_EQ(supplied->headers.at("x-xsdf-request-id"), "00000000deadbeef");

  // A malformed id is replaced, and ids without one are generated:
  // 16 hex digits, distinct across requests.
  auto is_hex16 = [](const std::string& id) {
    if (id.size() != 16) return false;
    for (char c : id) {
      if (!std::isxdigit(static_cast<unsigned char>(c))) return false;
    }
    return true;
  };
  auto malformed = HttpCall(kHost, server.port(), "POST", "/disambiguate",
                            {{"X-Xsdf-Request-Id", "not-hex"}},
                            "<animal><cat/></animal>", kClientTimeoutMs);
  ASSERT_TRUE(malformed.ok());
  const std::string id_a = malformed->headers.at("x-xsdf-request-id");
  EXPECT_TRUE(is_hex16(id_a)) << id_a;
  EXPECT_NE(id_a, "not-hex");

  auto generated = HttpCall(kHost, server.port(), "GET", "/healthz", {}, "",
                            kClientTimeoutMs);
  ASSERT_TRUE(generated.ok());
  const std::string id_b = generated->headers.at("x-xsdf-request-id");
  EXPECT_TRUE(is_hex16(id_b)) << id_b;
  EXPECT_NE(id_a, id_b);
}

/// Polls `path` until it holds at least `lines` newline-terminated
/// lines (the access-log writer runs asynchronously) and returns them.
std::vector<std::string> WaitForLogLines(const std::string& path,
                                         size_t lines) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::ifstream in(path, std::ios::binary);
    std::vector<std::string> out;
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) out.push_back(line);
    }
    if (out.size() >= lines) return out;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return {};
}

TEST(ServeTest, AccessLogRecordsEveryStatusWithFullSchema) {
  auto network = MiniNetwork();
  std::filesystem::path log_path =
      std::filesystem::temp_directory_path() / "xsdf_serve_access_test.jsonl";
  std::filesystem::remove(log_path);

  ServeOptions options;
  options.port = 0;
  options.engine.threads = 1;
  options.access_log_path = log_path.string();
  Server server(options);
  ASSERT_TRUE(server.InstallLexicon(network, "mini").ok());
  ASSERT_TRUE(server.Start().ok());
  {
    ServerRunner runner(&server);
    auto ok = HttpCall(kHost, server.port(), "POST", "/disambiguate",
                       {{"X-Xsdf-Request-Id", "00000000000cafe5"}},
                       "<animal><cat/></animal>", kClientTimeoutMs);
    ASSERT_TRUE(ok.ok());
    ASSERT_EQ(ok->status, 200);
    auto bad = HttpCall(kHost, server.port(), "POST", "/disambiguate", {},
                        "<unclosed>", kClientTimeoutMs);
    ASSERT_TRUE(bad.ok());
    ASSERT_EQ(bad->status, 400);
    // Deadline already expired: shed by the worker, still logged (the
    // whole point of S-class logging — rejected traffic is visible).
    auto shed = HttpCall(kHost, server.port(), "POST", "/disambiguate",
                         {{"X-Xsdf-Deadline-Ms", "0"}},
                         "<animal><dog/></animal>", kClientTimeoutMs);
    ASSERT_TRUE(shed.ok());
    ASSERT_EQ(shed->status, 504);
  }  // runner drains; each HttpCall closed its connection -> flushed

  std::vector<std::string> lines = WaitForLogLines(log_path.string(), 3);
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    // Field-completeness: every key present on every line, whatever
    // the status (the schema tools/validate_obs.py accesslog checks).
    for (const char* key :
         {"\"ts_ms\":", "\"id\":", "\"method\":", "\"path\":",
          "\"status\":", "\"bytes\":", "\"total_us\":", "\"deadline_ms\":",
          "\"queue_us\":", "\"engine_us\":", "\"worker\":",
          "\"measures\":"}) {
      EXPECT_NE(line.find(key), std::string::npos)
          << "missing " << key << " in: " << line;
    }
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_NE(lines[0].find("\"id\":\"00000000000cafe5\""), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("\"status\":200"), std::string::npos);
  EXPECT_NE(lines[1].find("\"status\":400"), std::string::npos);
  EXPECT_NE(lines[2].find("\"status\":504"), std::string::npos);
  // The 200 ran through the engine: a worker claimed it.
  EXPECT_EQ(lines[0].find("\"worker\":-1"), std::string::npos) << lines[0];
  std::filesystem::remove(log_path);
}

TEST(ServeTest, RetryAfterIsABoundedIntegerOn429) {
  auto network = MiniNetwork();
  ServeOptions options;
  options.port = 0;
  options.engine.threads = 1;
  options.engine.queue_capacity = 1;
  Server server(options);
  ASSERT_TRUE(server.InstallLexicon(network, "mini").ok());
  ASSERT_TRUE(server.Start().ok());
  ServerRunner runner(&server);

  std::string xml = "<hospital>";
  for (int i = 0; i < 12; ++i) {
    xml += "<patient><condition>cold</condition><doctor>head</doctor>"
           "<bank>blood</bank></patient>";
  }
  xml += "</hospital>";

  std::atomic<int> rejected{0};
  std::atomic<int> bad_header{0};
  for (int round = 0; round < 5 && rejected.load() == 0; ++round) {
    std::vector<std::thread> clients;
    for (int i = 0; i < 8; ++i) {
      clients.emplace_back([&] {
        auto response = HttpCall(kHost, server.port(), "POST",
                                 "/disambiguate", {}, xml, kClientTimeoutMs);
        if (!response.ok() || response->status != 429) return;
        ++rejected;
        auto it = response->headers.find("retry-after");
        if (it == response->headers.end()) {
          ++bad_header;
          return;
        }
        char* end = nullptr;
        long seconds = std::strtol(it->second.c_str(), &end, 10);
        // Derived from queue depth / drain rate, but always a plain
        // integer in [1, 30] whatever the live rates were.
        if (end == it->second.c_str() || *end != '\0' || seconds < 1 ||
            seconds > 30) {
          ++bad_header;
        }
      });
    }
    for (std::thread& client : clients) client.join();
  }
  EXPECT_GT(rejected.load(), 0)
      << "no request was shed across 5 rounds of 8 concurrent clients";
  EXPECT_EQ(bad_header.load(), 0);
}

TEST(ServeTest, MetricsPrometheusExposition) {
  auto network = MiniNetwork();
  obs::MetricsRegistry registry;
  ServeOptions options;
  options.port = 0;
  options.engine.threads = 1;
  options.metrics = &registry;
  Server server(options);
  ASSERT_TRUE(server.InstallLexicon(network, "mini").ok());
  ASSERT_TRUE(server.Start().ok());
  ServerRunner runner(&server);

  auto doc = HttpCall(kHost, server.port(), "POST", "/disambiguate", {},
                      "<animal><cat/></animal>", kClientTimeoutMs);
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->status, 200);

  auto prom = HttpCall(kHost, server.port(), "GET", "/metrics?format=prom",
                       {}, "", kClientTimeoutMs);
  ASSERT_TRUE(prom.ok());
  EXPECT_EQ(prom->status, 200);
  EXPECT_NE(prom->headers.at("content-type").find("text/plain"),
            std::string::npos);
  const std::string& text = prom->body;
  EXPECT_NE(text.find("# TYPE xsdf_serve_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE xsdf_serve_request_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("xsdf_serve_request_us_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("xsdf_serve_request_us_sum"), std::string::npos);
  EXPECT_NE(text.find("xsdf_serve_request_us_count"), std::string::npos);
  // The status-class histograms exist (count 0 or more) from startup.
  EXPECT_NE(text.find("xsdf_serve_request_2xx_us_count"),
            std::string::npos);
  EXPECT_NE(text.find("xsdf_serve_request_5xx_us_count"),
            std::string::npos);

  auto bad = HttpCall(kHost, server.port(), "GET", "/metrics?format=xml",
                      {}, "", kClientTimeoutMs);
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 400);

  // The JSON default is unchanged by the new renderer.
  auto json = HttpCall(kHost, server.port(), "GET", "/metrics", {}, "",
                       kClientTimeoutMs);
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json->status, 200);
  EXPECT_NE(json->body.find("\"histograms\""), std::string::npos);
}

TEST(ServeTest, StatsReportsRollingPercentilesAndDebugSlowHasSpans) {
  auto network = MiniNetwork();
  ServeOptions options;
  options.port = 0;
  options.engine.threads = 1;
  Server server(options);
  ASSERT_TRUE(server.InstallLexicon(network, "mini").ok());
  ASSERT_TRUE(server.Start().ok());
  ServerRunner runner(&server);

  for (int i = 0; i < 3; ++i) {
    auto doc = HttpCall(kHost, server.port(), "POST", "/disambiguate",
                        {{"X-Xsdf-Request-Id", "000000000000bead"}},
                        "<animal><cat/></animal>", kClientTimeoutMs);
    ASSERT_TRUE(doc.ok());
    ASSERT_EQ(doc->status, 200);
  }

  auto stats = HttpCall(kHost, server.port(), "GET", "/stats", {}, "",
                        kClientTimeoutMs);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->status, 200);
  for (const char* key :
       {"\"endpoints\"", "\"disambiguate\"", "\"p50_us\"", "\"p99_us\"",
        "\"p999_us\"", "\"rate_per_s\"", "\"slow_traces_retained\""}) {
    EXPECT_NE(stats->body.find(key), std::string::npos) << key;
  }
  // Three completed /disambiguate requests inside the rolling minute.
  EXPECT_NE(stats->body.find("\"count\":3"), std::string::npos)
      << stats->body;

  auto slow = HttpCall(kHost, server.port(), "GET", "/debug/slow", {}, "",
                       kClientTimeoutMs);
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(slow->status, 200);
  const std::string& trace = slow->body;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  // The span tree covers the full request path: connection-side read
  // and send, queue wait, and the engine stages. The streaming front
  // end fuses parse + tree build into the "parse" span, so no
  // "tree_build" span appears.
  for (const char* span : {"\"read\"", "\"queue_wait\"", "\"parse\"",
                           "\"disambiguate\"",
                           "\"serialize\"", "\"send\""}) {
    EXPECT_NE(trace.find(span), std::string::npos) << span;
  }
  // Traces are labeled with the request id, so a log line and a span
  // tree correlate without guesswork.
  EXPECT_NE(trace.find("req 000000000000bead"), std::string::npos);
  EXPECT_NE(trace.find("POST /disambiguate -> 200"), std::string::npos);
}

TEST(ServeTest, MeasureConfigSurfacesInExplainStatsAndAccessLog) {
  // A server started under a non-default --measures composition must
  // (a) answer byte-identically to an engine under the same config,
  // (b) report the canonical spec in /explain (body + header) and
  // /stats, and (c) stamp every access-log line with it — so an
  // operator can always tell which composition produced a response.
  auto network = MiniNetwork();
  auto parsed = sim::MeasureConfig::Parse(
      "wu-palmer:0.25,lin:0.25,gloss-overlap:0.25,conceptual-density:0.25");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::string spec = parsed->ToSpec();

  std::filesystem::path log_path =
      std::filesystem::temp_directory_path() / "xsdf_serve_measures_test.jsonl";
  std::filesystem::remove(log_path);

  ServeOptions options;
  options.port = 0;
  options.engine.threads = 2;
  options.engine.disambiguator.measure_config = *parsed;
  options.access_log_path = log_path.string();
  Server server(options);
  ASSERT_TRUE(server.InstallLexicon(network, "mini").ok());
  ASSERT_TRUE(server.Start().ok());

  // Find a corpus document whose output under hybrid+density differs
  // from the paper default, so the test cannot silently pass because
  // the config was ignored everywhere. The generated Amazon family
  // discriminates today; searching keeps the test robust if the
  // generators change.
  std::string xml;
  std::string engine_answer;
  {
    runtime::EngineOptions engine_options;
    engine_options.threads = 1;
    engine_options.disambiguator.measure_config = *parsed;
    runtime::DisambiguationEngine engine(network.get(), engine_options);
    for (const auto* generator : datasets::AllDatasets()) {
      for (const auto& doc : generator->Generate(20150323)) {
        auto results = engine.RunBatch({{0, doc.name, doc.xml}});
        ASSERT_TRUE(results[0].ok) << results[0].error;
        if (results[0].semantic_xml != EngineAnswer(*network, doc.xml)) {
          xml = doc.xml;
          engine_answer = results[0].semantic_xml;
          break;
        }
      }
      if (!xml.empty()) break;
    }
  }
  ASSERT_FALSE(xml.empty())
      << "no generated document discriminates hybrid+density from the "
         "paper default";

  {
    ServerRunner runner(&server);
    auto response = HttpCall(kHost, server.port(), "POST", "/disambiguate",
                             {}, xml, kClientTimeoutMs);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, 200);
    EXPECT_EQ(response->body, engine_answer);

    // node=1: the document element — present whatever document the
    // search above settled on.
    auto explain = HttpCall(kHost, server.port(), "POST",
                            "/explain?node=1", {}, xml, kClientTimeoutMs);
    ASSERT_TRUE(explain.ok()) << explain.status().ToString();
    EXPECT_EQ(explain->status, 200);
    EXPECT_NE(explain->body.find("\"measures\":\"" + spec + "\""),
              std::string::npos)
        << explain->body;
    EXPECT_EQ(explain->headers.at("x-xsdf-measures"), spec);

    auto stats = HttpCall(kHost, server.port(), "GET", "/stats", {}, "",
                          kClientTimeoutMs);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->status, 200);
    EXPECT_NE(stats->body.find(spec), std::string::npos) << stats->body;
  }

  std::vector<std::string> lines = WaitForLogLines(log_path.string(), 3);
  ASSERT_GE(lines.size(), 3u);
  for (const std::string& line : lines) {
    EXPECT_NE(line.find("\"measures\":\"" + spec + "\""), std::string::npos)
        << line;
  }
  std::filesystem::remove(log_path);
}

TEST(ServeTest, DisabledTracingTurnsDebugSlowOff) {
  auto network = BuildTinyTaxonomy(0);
  ServeOptions options;
  options.port = 0;
  options.engine.threads = 1;
  options.slow_request_keep = 0;
  Server server(options);
  ASSERT_TRUE(server.InstallLexicon(network, "tiny").ok());
  ASSERT_TRUE(server.Start().ok());
  ServerRunner runner(&server);

  auto doc = HttpCall(kHost, server.port(), "POST", "/disambiguate", {},
                      "<animal><cat/></animal>", kClientTimeoutMs);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->status, 200);
  auto slow = HttpCall(kHost, server.port(), "GET", "/debug/slow", {}, "",
                       kClientTimeoutMs);
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(slow->status, 404);
}

}  // namespace
}  // namespace xsdf
