// Schema matching through disambiguated concepts (one of the paper's
// motivating applications, §1): the two Figure 1 documents describe
// the same movie with different structures and tag vocabularies
// (picture/movie, director/directed_by, star/actor...). After XSDF
// disambiguation both sides carry concept ids, and matching becomes
// concept identity / similarity instead of string equality.
//
//   build/examples/schema_matching

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/disambiguator.h"
#include "datasets/generator.h"
#include "sim/combined.h"
#include "wordnet/mini_wordnet.h"

namespace {

struct LabeledConcept {
  std::string label;
  xsdf::wordnet::ConceptId concept_id;
};

/// Runs XSDF and extracts one concept per distinct structural label.
std::vector<LabeledConcept> ConceptsOf(
    const xsdf::core::Disambiguator& disambiguator,
    const xsdf::wordnet::SemanticNetwork& network,
    const std::string& xml) {
  auto result = disambiguator.RunOnXml(xml);
  std::map<std::string, xsdf::wordnet::ConceptId> by_label;
  for (const auto& node : result->tree.nodes()) {
    if (node.kind == xsdf::xml::TreeNodeKind::kToken) continue;
    auto it = result->assignments.find(node.id);
    if (it == result->assignments.end()) continue;
    by_label.emplace(node.label, it->second.sense.primary);
  }
  std::vector<LabeledConcept> out;
  for (const auto& [label, id] : by_label) out.push_back({label, id});
  return out;
}

}  // namespace

int main() {
  auto network = xsdf::wordnet::BuildMiniWordNet();
  if (!network.ok()) return 1;
  xsdf::core::Disambiguator disambiguator(&*network);
  xsdf::sim::CombinedMeasure measure;

  const auto docs = xsdf::datasets::Figure1Documents();
  auto schema_a = ConceptsOf(disambiguator, *network, docs[0].xml);
  auto schema_b = ConceptsOf(disambiguator, *network, docs[1].xml);

  std::printf("Schema A (%s): %zu labels; Schema B (%s): %zu labels\n\n",
              docs[0].name.c_str(), schema_a.size(), docs[1].name.c_str(),
              schema_b.size());
  std::printf("%-14s %-14s %-10s %s\n", "label A", "label B",
              "similarity", "verdict");

  // Greedy best-match per label in A.
  for (const auto& a : schema_a) {
    const LabeledConcept* best = nullptr;
    double best_sim = 0.0;
    for (const auto& b : schema_b) {
      double sim =
          measure.Similarity(*network, a.concept_id, b.concept_id);
      if (sim > best_sim) {
        best_sim = sim;
        best = &b;
      }
    }
    if (best == nullptr) continue;
    const char* verdict = best_sim > 0.99  ? "same concept"
                          : best_sim > 0.6 ? "related"
                                           : "unmatched";
    std::printf("%-14s %-14s %-10.3f %s\n", a.label.c_str(),
                best->label.c_str(), best_sim, verdict);
  }

  std::printf(
      "\nSyntactically different tags align semantically: film <-> "
      "movie\nresolve to the same synset and star <-> actor match "
      "through concept\nsimilarity, which string matching cannot see. "
      "Residual mismatches\n(picture read as photograph) mirror the "
      "paper's ~0.6-0.7 F-values —\ndisambiguation is imperfect, and "
      "matching quality follows it.\n");
  return 0;
}
