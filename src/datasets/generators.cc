// Deterministic generators for the ten dataset families of paper
// Table 3. Each generator reproduces the family's grammar (tags per
// its DTD), its approximate shape statistics (documents, node counts,
// depth, fan-out), and its Table 1 group profile (ambiguity x
// structure), and injects a gold standard: the sense each label was
// generated to mean, keyed by preprocessed node label.

#include "datasets/generator.h"

#include <memory>

#include "common/strings.h"
#include "text/preprocess.h"
#include "wordnet/mini_wordnet.h"
#include "xml/dom.h"
#include "xml/serializer.h"

namespace xsdf::datasets {

namespace {

/// One vocabulary item: the surface word used in the document and the
/// lexicon key of the sense it is used in.
struct Vocab {
  const char* word;
  const char* key;
};

/// Lexicon probe against the mini-WordNet, used to normalize gold
/// labels exactly the way tree labels are normalized.
const text::LexiconProbe& GoldProbe() {
  static const text::LexiconProbe* probe = [] {
    auto network = wordnet::BuildMiniWordNet();
    auto* owned =
        new wordnet::SemanticNetwork(std::move(network).value());
    return new text::LexiconProbe(
        [owned](const std::string& lemma) { return owned->Contains(lemma); });
  }();
  return *probe;
}

/// Builder for one generated document.
class DocBuilder {
 public:
  explicit DocBuilder(const char* root_tag) {
    doc_.set_root(doc_.NewElement(root_tag));
  }

  xml::Node* root() { return doc_.mutable_root(); }

  /// Records that the node label derived from `label` was generated in
  /// sense `key`. The label is normalized through the same linguistic
  /// pipeline that produces tree labels ("authors" -> "author",
  /// "personae" -> "persona"), so evaluation keys always match.
  void Gold(const std::string& label, const std::string& key) {
    out_.gold[text::PreprocessTagName(label, GoldProbe()).label] = key;
  }

  /// Adds <tag>, recording gold for the tag when `key` is non-null.
  xml::Node* Elem(xml::Node* parent, const char* tag,
                  const char* key = nullptr) {
    if (key != nullptr) Gold(AsciiToLower(tag), key);
    return parent->AddElement(tag);
  }

  /// Adds <tag>word</tag> where `word` comes from the vocabulary item;
  /// gold is recorded for both the tag and the value word.
  xml::Node* ElemWithVocab(xml::Node* parent, const char* tag,
                           const char* tag_key, const Vocab& value) {
    xml::Node* e = Elem(parent, tag, tag_key);
    e->AddText(value.word);
    if (value.key != nullptr) Gold(value.word, value.key);
    return e;
  }

  /// Adds <tag>text</tag> with no gold for the value.
  xml::Node* ElemWithText(xml::Node* parent, const char* tag,
                          const char* tag_key, const std::string& text) {
    xml::Node* e = Elem(parent, tag, tag_key);
    e->AddText(text);
    return e;
  }

  GeneratedDocument Finish(std::string name) {
    out_.name = std::move(name);
    out_.xml = xml::Serialize(doc_);
    return std::move(out_);
  }

 private:
  xml::Document doc_;
  GeneratedDocument out_;
};

const Vocab& Pick(Rng& rng, const std::vector<Vocab>& pool) {
  return pool[rng.UniformInt(pool.size())];
}

// ===================== Dataset 1: Shakespeare (Group 1) ==================
// shakespeare.dtd: PLAY / TITLE / PERSONAE / PERSONA / ACT / SCENE /
// SPEECH / SPEAKER / LINE / STAGEDIR. Deep (depth ~6), large (~190
// nodes/doc), and highly ambiguous: tag labels (play, act, scene,
// speech, line, title) and line words are all heavily polysemous.
class ShakespeareGenerator : public DatasetGenerator {
 public:
  DatasetInfo info() const override {
    return {1, "Shakespeare collection", "shakespeare.dtd", 1, 10};
  }

  std::vector<GeneratedDocument> Generate(uint64_t seed) const override {
    // Line vocabulary comes in *themes*: within one document each theme
    // word keeps one sense, and sibling words of the same line share the
    // theme, so the sphere context disambiguates them while the root
    // path (line/speech/scene/act/play) carries no signal — the
    // condition under which comprehensive structural context pays off.
    const std::vector<std::vector<Vocab>> kThemes = {
        // celestial imagery
        {{"star", "star.celestial.n"},
         {"light", "light.n"},
         {"sun", "sun.n"},
         {"shade", "shade.n"}},
        // the body
        {{"head", "head.body.n"},
         {"member", "member.limb.n"},
         {"rear", "rear.body.n"},
         {"soul", "person.n"}},
        // the royal court
        {{"king", "king.n"},
         {"prince", "prince.n"},
         {"princess", "princess.n"},
         {"grace", "grace.elegance.n"}},
        // letters and words
        {{"word", "word.n"},
         {"name", "name.n"},
         {"verse", "verse.line.n"},
         {"poem", "poem.n"}},
    };
    const std::vector<Vocab> kSpeakers = {
        {"hamlet", "hamlet.play.n"}, {"messenger", "messenger.n"},
        {"clown", "clown.n"},        {"dancer", "dancer.n"},
    };
    const std::vector<Vocab> kTitles = {
        {"tragedy", "tragedy.n"}, {"comedy", "comedy.n"},
        {"drama", "play.drama.n"},
    };
    std::vector<GeneratedDocument> docs;
    for (int d = 0; d < info().doc_count; ++d) {
      Rng rng(seed + static_cast<uint64_t>(d) * 7919);
      // Two disjoint themes per document keep gold one-sense-per-doc.
      size_t theme_a = rng.UniformInt(kThemes.size());
      size_t theme_b =
          (theme_a + 1 + rng.UniformInt(kThemes.size() - 1)) %
          kThemes.size();
      const std::vector<const std::vector<Vocab>*> doc_themes = {
          &kThemes[theme_a], &kThemes[theme_b]};
      DocBuilder b("PLAY");
      b.Gold("play", "play.drama.n");
      b.ElemWithVocab(b.root(), "TITLE", "title.name.n",
                      Pick(rng, kTitles));
      xml::Node* personae = b.Elem(b.root(), "PERSONAE", "persona.n");
      b.Gold("personae", "persona.n");
      int persona_count = 2 + static_cast<int>(rng.UniformInt(3));
      for (int p = 0; p < persona_count; ++p) {
        b.ElemWithVocab(personae, "PERSONA", "persona.n",
                        Pick(rng, kSpeakers));
      }
      int acts = 3 + static_cast<int>(rng.UniformInt(2));
      for (int a = 0; a < acts; ++a) {
        xml::Node* act = b.Elem(b.root(), "ACT", "act.play.n");
        b.ElemWithVocab(act, "TITLE", "title.name.n", Pick(rng, kTitles));
        int scenes = 2 + static_cast<int>(rng.UniformInt(2));
        for (int s = 0; s < scenes; ++s) {
          xml::Node* scene = b.Elem(act, "SCENE", "scene.play.n");
          if (rng.Bernoulli(0.4)) {
            b.ElemWithVocab(scene, "STAGEDIR", "stage_direction.n",
                            Pick(rng, kSpeakers));
            b.Gold("stagedir", "stage_direction.n");
          }
          int speeches = 2 + static_cast<int>(rng.UniformInt(2));
          for (int sp = 0; sp < speeches; ++sp) {
            xml::Node* speech = b.Elem(scene, "SPEECH", "speech.lines.n");
            b.ElemWithVocab(speech, "SPEAKER", "speaker.n",
                            Pick(rng, kSpeakers));
            int lines = 1 + static_cast<int>(rng.UniformInt(2));
            for (int l = 0; l < lines; ++l) {
              // One theme per line; 2-3 theme words side by side so
              // sibling tokens disambiguate each other.
              const std::vector<Vocab>& theme =
                  *doc_themes[rng.UniformInt(doc_themes.size())];
              std::string text;
              int words = 2 + static_cast<int>(rng.UniformInt(2));
              for (int w = 0; w < words; ++w) {
                const Vocab& v = theme[rng.UniformInt(theme.size())];
                if (!text.empty()) text += ' ';
                text += v.word;
                b.Gold(v.word, v.key);
              }
              b.ElemWithText(speech, "LINE", "line.text.n", text);
            }
          }
        }
      }
      docs.push_back(b.Finish(StrFormat("shakespeare_%02d.xml", d)));
    }
    return docs;
  }
};

// ===================== Dataset 2: Amazon products (Group 2) ==============
// amazon_product.dtd: flat but wide product records with highly
// polysemous tags (title, weight, brand, condition, stock, volume) and
// values (golf club, cd, record, band, track...).
class AmazonGenerator : public DatasetGenerator {
 public:
  DatasetInfo info() const override {
    return {2, "Amazon product files", "amazon_product.dtd", 2, 10};
  }

  std::vector<GeneratedDocument> Generate(uint64_t seed) const override {
    const std::vector<Vocab> kProducts = {
        {"club", "club.golf.n"},     {"record", "record.disc.n"},
        {"book", "book.n"},          {"cd", "cd.n"},
        {"album", "album.n"},        {"magazine", "magazine.n"},
        {"wheelchair", "wheelchair.n"}, {"phone", "phone.n"},
        {"light", "light.lamp.n"},   {"dish", "dish.antenna.n"},
    };
    const std::vector<Vocab> kCategories = {
        {"music", "music.n.art"},    {"sport", "sport.n"},
        {"game", "game.n"},          {"food", "food.n"},
    };
    const std::vector<Vocab> kConditions = {
        {"new", nullptr}, {"used", nullptr}, {"refurbished", nullptr},
    };
    std::vector<GeneratedDocument> docs;
    for (int d = 0; d < info().doc_count; ++d) {
      Rng rng(seed + 17 + static_cast<uint64_t>(d) * 104729);
      DocBuilder b("products");
      b.Gold("products", "product.n");
      int items = 3 + static_cast<int>(rng.UniformInt(2));
      for (int i = 0; i < items; ++i) {
        xml::Node* product = b.Elem(b.root(), "product", "product.n");
        b.ElemWithVocab(product, "title", "title.name.n",
                        Pick(rng, kProducts));
        b.ElemWithVocab(product, "brand", "brand.n", Pick(rng, kProducts));
        b.ElemWithVocab(product, "category", "category.n",
                        Pick(rng, kCategories));
        b.ElemWithText(product, "price", "price.n",
                       StrFormat("%d", 5 + (int)rng.UniformInt(200)));
        b.ElemWithText(product, "weight", "weight.n",
                       StrFormat("%d", 1 + (int)rng.UniformInt(40)));
        b.ElemWithText(product, "ListPrice", nullptr,
                       StrFormat("%d", 9 + (int)rng.UniformInt(220)));
        b.Gold("list_price", "price.n");
        // Free-text description with ambiguous words.
        {
          const Vocab& v1 = Pick(rng, kProducts);
          const Vocab& v2 = Pick(rng, kCategories);
          b.ElemWithText(product, "description", "description.n",
                         std::string(v1.word) + " " + v2.word);
          if (v1.key) b.Gold(v1.word, v1.key);
          if (v2.key) b.Gold(v2.word, v2.key);
        }
        xml::Node* offers = b.Elem(product, "offers", "offer.n");
        int offer_count = 1 + static_cast<int>(rng.UniformInt(2));
        for (int o = 0; o < offer_count; ++o) {
          xml::Node* offer = b.Elem(offers, "offer", "offer.n");
          b.ElemWithText(offer, "price", "price.n",
                         StrFormat("%d", 4 + (int)rng.UniformInt(180)));
          b.ElemWithVocab(offer, "condition", "condition.n",
                          Pick(rng, kConditions));
          b.ElemWithText(offer, "stock", "stock.supply.n",
                         StrFormat("%d", (int)rng.UniformInt(50)));
        }
        xml::Node* reviews = b.Elem(product, "reviews",
                                    "review.critique.n");
        int review_count = 1 + static_cast<int>(rng.UniformInt(2));
        for (int r = 0; r < review_count; ++r) {
          xml::Node* review = b.Elem(reviews, "review",
                                     "review.critique.n");
          b.ElemWithText(review, "rating", "rating.n",
                         StrFormat("%d", 1 + (int)rng.UniformInt(5)));
          const Vocab& v = Pick(rng, kProducts);
          b.ElemWithText(review, "content", "message.n",
                         std::string(v.word));
          if (v.key) b.Gold(v.word, v.key);
        }
      }
      docs.push_back(b.Finish(StrFormat("amazon_%02d.xml", d)));
    }
    return docs;
  }
};

// ===================== Dataset 3: SIGMOD Record (Group 3) ================
class SigmodGenerator : public DatasetGenerator {
 public:
  DatasetInfo info() const override {
    return {3, "SIGMOD Record", "ProceedingsPage.dtd", 3, 6};
  }

  std::vector<GeneratedDocument> Generate(uint64_t seed) const override {
    const std::vector<Vocab> kTopics = {
        {"database", "database.n"},   {"information", "information.n"},
        {"software", "software.n"},   {"model", "model.version.n"},
        {"tree", "tree.diagram.n"},   {"language", nullptr},
        {"catalog", "catalog.n"},     {"index", nullptr},
    };
    const std::vector<Vocab> kAuthors = {
        {"james", "henry_james.n"},   {"london", "jack_london.n"},
        {"stewart", "potter_stewart.n"}, {"washington", "george_washington.n"},
    };
    std::vector<GeneratedDocument> docs;
    for (int d = 0; d < info().doc_count; ++d) {
      Rng rng(seed + 31 + static_cast<uint64_t>(d) * 92821);
      DocBuilder b("proceedings");
      b.Gold("proceedings", "proceedings.n");
      b.ElemWithText(b.root(), "conference", "conference.n",
                     "sigmod record");
      b.ElemWithText(b.root(), "volume", "volume.series.n",
                     StrFormat("%d", 10 + (int)rng.UniformInt(30)));
      b.ElemWithText(b.root(), "number", "number.identifier.n",
                     StrFormat("%d", 1 + (int)rng.UniformInt(4)));
      xml::Node* articles = b.Elem(b.root(), "articles", "article.n");
      int article_count = 2 + static_cast<int>(rng.UniformInt(2));
      for (int a = 0; a < article_count; ++a) {
        xml::Node* article = b.Elem(articles, "article", "article.n");
        {
          const Vocab& t1 = Pick(rng, kTopics);
          const Vocab& t2 = Pick(rng, kTopics);
          b.ElemWithText(article, "title", "title.name.n",
                         std::string(t1.word) + " " + t2.word);
          if (t1.key) b.Gold(t1.word, t1.key);
          if (t2.key) b.Gold(t2.word, t2.key);
        }
        xml::Node* authors = b.Elem(article, "authors", "writer.n");
        int author_count = 1 + static_cast<int>(rng.UniformInt(3));
        for (int au = 0; au < author_count; ++au) {
          b.ElemWithVocab(authors, "author", "writer.n",
                          Pick(rng, kAuthors));
        }
        b.ElemWithText(article, "initPage", nullptr,
                       StrFormat("%d", 1 + (int)rng.UniformInt(300)));
        b.ElemWithText(article, "endPage", nullptr,
                       StrFormat("%d", 301 + (int)rng.UniformInt(40)));
        b.Gold("init_page", "page.paper.n");
        b.Gold("end_page", "page.paper.n");
      }
      docs.push_back(b.Finish(StrFormat("sigmod_%02d.xml", d)));
    }
    return docs;
  }
};

// ===================== Dataset 4: IMDB movies (Group 3) ==================
class ImdbGenerator : public DatasetGenerator {
 public:
  DatasetInfo info() const override {
    return {4, "IMDB database", "movies.dtd", 3, 6};
  }

  std::vector<GeneratedDocument> Generate(uint64_t seed) const override {
    const std::vector<Vocab> kDirectors = {
        {"hitchcock", "alfred_hitchcock.n"},
    };
    const std::vector<Vocab> kActors = {
        {"kelly", "grace_kelly.n"},   {"stewart", "james_stewart.n"},
    };
    const std::vector<Vocab> kGenres = {
        {"mystery", "mystery.story.n"}, {"comedy", "comedy.n"},
        {"thriller", "thriller.n"},     {"musical", "musical.n"},
        {"documentary", "documentary.n"},
    };
    std::vector<GeneratedDocument> docs;
    for (int d = 0; d < info().doc_count; ++d) {
      Rng rng(seed + 47 + static_cast<uint64_t>(d) * 49999);
      DocBuilder b("movies");
      b.Gold("movies", "movie.n");
      xml::Node* movie = b.Elem(b.root(), "movie", "movie.n");
      movie->AddAttribute("year",
                          StrFormat("%d", 1940 + (int)rng.UniformInt(60)));
      b.Gold("year", "year.calendar.n");
      b.ElemWithVocab(movie, "genre", "genre.kind.n", Pick(rng, kGenres));
      b.ElemWithVocab(movie, "director", "director.stage.n",
                      Pick(rng, kDirectors));
      xml::Node* cast = b.Elem(movie, "cast", "cast.actors.n");
      int stars = 1 + static_cast<int>(rng.UniformInt(2));
      for (int s = 0; s < stars; ++s) {
        b.ElemWithVocab(cast, "star", "star.performer.n",
                        Pick(rng, kActors));
      }
      const Vocab& g = Pick(rng, kGenres);
      b.ElemWithText(movie, "plot", "plot.story.n", std::string(g.word));
      b.Gold(g.word, g.key);
      docs.push_back(b.Finish(StrFormat("imdb_%02d.xml", d)));
    }
    return docs;
  }
};

// ===================== Dataset 5: Niagara bibliography (Group 3) =========
class BibGenerator : public DatasetGenerator {
 public:
  DatasetInfo info() const override {
    return {5, "Niagara collection", "bib.dtd", 3, 8};
  }

  std::vector<GeneratedDocument> Generate(uint64_t seed) const override {
    const std::vector<Vocab> kAuthors = {
        {"london", "jack_london.n"},  {"james", "henry_james.n"},
        {"shakespeare", "william_shakespeare.n"},
    };
    const std::vector<Vocab> kSubjects = {
        {"tragedy", "tragedy.n"},     {"mystery", "mystery.story.n"},
        {"poem", "poem.n"},           {"journal", "journal.periodical.n"},
    };
    std::vector<GeneratedDocument> docs;
    for (int d = 0; d < info().doc_count; ++d) {
      Rng rng(seed + 61 + static_cast<uint64_t>(d) * 15485867);
      DocBuilder b("bib");
      int books = 2 + static_cast<int>(rng.UniformInt(2));
      for (int book_idx = 0; book_idx < books; ++book_idx) {
        xml::Node* book = b.Elem(b.root(), "book", "book.n");
        b.ElemWithVocab(book, "title", "title.name.n",
                        Pick(rng, kSubjects));
        b.ElemWithVocab(book, "author", "writer.n", Pick(rng, kAuthors));
        b.ElemWithText(book, "publisher", "publisher.n", "house press");
        b.Gold("house", "firm.n");
        b.Gold("press", "press.n");
        b.ElemWithText(book, "year", "year.calendar.n",
                       StrFormat("%d", 1900 + (int)rng.UniformInt(100)));
        b.ElemWithText(book, "price", "price.n",
                       StrFormat("%d", 10 + (int)rng.UniformInt(90)));
        if (rng.Bernoulli(0.5)) {
          b.ElemWithVocab(book, "editor", "editor.n", Pick(rng, kAuthors));
        }
      }
      docs.push_back(b.Finish(StrFormat("bib_%02d.xml", d)));
    }
    return docs;
  }
};

// ===================== Dataset 6: W3Schools CD catalog (Group 4) =========
class CdCatalogGenerator : public DatasetGenerator {
 public:
  DatasetInfo info() const override {
    return {6, "W3Schools", "cd_catalog.dtd", 4, 4};
  }

  std::vector<GeneratedDocument> Generate(uint64_t seed) const override {
    const std::vector<Vocab> kArtists = {
        {"kelly", "gene_kelly.n"},    {"band", "band.music.n"},
        {"singer", "singer.n"},
    };
    const std::vector<Vocab> kCountries = {
        {"monaco", "monaco.n"},       {"usa", nullptr},
        {"uk", nullptr},
    };
    std::vector<GeneratedDocument> docs;
    for (int d = 0; d < info().doc_count; ++d) {
      Rng rng(seed + 71 + static_cast<uint64_t>(d) * 32452843);
      DocBuilder b("CATALOG");
      b.Gold("catalog", "catalog.n");
      int cds = 2 + static_cast<int>(rng.UniformInt(2));
      for (int c = 0; c < cds; ++c) {
        xml::Node* cd = b.Elem(b.root(), "CD", "cd.n");
        b.ElemWithText(cd, "TITLE", "title.name.n", "song album");
        b.Gold("song", "song.n");
        b.Gold("album", "album.n");
        b.ElemWithVocab(cd, "ARTIST", "artist.performer.n",
                        Pick(rng, kArtists));
        b.ElemWithText(cd, "COMPANY", "company.firm.n", "record house");
        b.Gold("record", "record.disc.n");
        b.Gold("house", "firm.n");
        b.ElemWithVocab(cd, "COUNTRY", "country.nation.n",
                        Pick(rng, kCountries));
        b.ElemWithText(cd, "PRICE", "price.n",
                       StrFormat("%d", 8 + (int)rng.UniformInt(14)));
        b.ElemWithText(cd, "YEAR", "year.calendar.n",
                       StrFormat("%d", 1960 + (int)rng.UniformInt(45)));
      }
      docs.push_back(b.Finish(StrFormat("cd_%02d.xml", d)));
    }
    return docs;
  }
};

// ===================== Dataset 7: W3Schools food menu (Group 4) ==========
class FoodMenuGenerator : public DatasetGenerator {
 public:
  DatasetInfo info() const override {
    return {7, "W3Schools", "food_menu.dtd", 4, 4};
  }

  std::vector<GeneratedDocument> Generate(uint64_t seed) const override {
    const std::vector<Vocab> kDishes = {
        {"waffle", "waffle.n"},       {"toast", "toast.n"},
        {"strawberry", "strawberry.n"}, {"bread", "bread.n"},
        {"egg", "egg.n"},
    };
    const std::vector<Vocab> kExtras = {
        {"cream", "cream.n"},         {"syrup", "syrup.n"},
        {"coffee", "coffee.n"},       {"juice", "juice.n"},
        {"berry", "berry.n"},
    };
    std::vector<GeneratedDocument> docs;
    for (int d = 0; d < info().doc_count; ++d) {
      Rng rng(seed + 83 + static_cast<uint64_t>(d) * 1299709);
      DocBuilder b("breakfast_menu");
      // The compound tag keeps a single label; its gold sense is the
      // semantic head (menu), matched against either member of the
      // assigned sense pair.
      b.Gold("breakfast_menu", "menu.n");
      int foods = 2 + static_cast<int>(rng.UniformInt(2));
      for (int f = 0; f < foods; ++f) {
        xml::Node* food = b.Elem(b.root(), "food", "solid_food.n");
        b.ElemWithVocab(food, "name", "name.n", Pick(rng, kDishes));
        b.ElemWithText(food, "price", "price.n",
                       StrFormat("%d", 4 + (int)rng.UniformInt(8)));
        {
          const Vocab& e1 = Pick(rng, kExtras);
          const Vocab& e2 = Pick(rng, kDishes);
          b.ElemWithText(food, "description", "description.n",
                         std::string(e2.word) + " with " + e1.word);
          b.Gold(e1.word, e1.key);
          b.Gold(e2.word, e2.key);
        }
        b.ElemWithText(food, "calories", "calorie.n",
                       StrFormat("%d", 200 + (int)rng.UniformInt(700)));
      }
      docs.push_back(b.Finish(StrFormat("food_%02d.xml", d)));
    }
    return docs;
  }
};

// ===================== Dataset 8: W3Schools plant catalog (Group 4) ======
class PlantCatalogGenerator : public DatasetGenerator {
 public:
  DatasetInfo info() const override {
    return {8, "W3Schools", "plant_catalog.dtd", 4, 4};
  }

  std::vector<GeneratedDocument> Generate(uint64_t seed) const override {
    const std::vector<Vocab> kPlants = {
        {"columbine", "columbine.n"}, {"marigold", "marigold.n"},
        {"anemone", "anemone.n"},
    };
    const std::vector<Vocab> kLight = {
        {"sun", "sun.n"},             {"shade", "shade.n"},
    };
    std::vector<GeneratedDocument> docs;
    for (int d = 0; d < info().doc_count; ++d) {
      Rng rng(seed + 97 + static_cast<uint64_t>(d) * 179426549);
      DocBuilder b("CATALOG");
      b.Gold("catalog", "catalog.n");
      int plants = 2 + static_cast<int>(rng.UniformInt(1));
      for (int p = 0; p < plants; ++p) {
        xml::Node* plant = b.Elem(b.root(), "PLANT", "plant.flora.n");
        b.ElemWithVocab(plant, "COMMON", "common.vernacular.a",
                        Pick(rng, kPlants));
        b.ElemWithVocab(plant, "BOTANICAL", "botanic.a",
                        Pick(rng, kPlants));
        b.ElemWithText(plant, "ZONE", "zone.climate.n",
                       StrFormat("%d", 1 + (int)rng.UniformInt(8)));
        b.ElemWithVocab(plant, "LIGHT", "light.n", Pick(rng, kLight));
        b.ElemWithText(plant, "PRICE", "price.n",
                       StrFormat("%d", 2 + (int)rng.UniformInt(10)));
        b.ElemWithText(plant, "AVAILABILITY", "availability.n",
                       StrFormat("%d", (int)rng.UniformInt(2) ? 1 : 0));
      }
      docs.push_back(b.Finish(StrFormat("plant_%02d.xml", d)));
    }
    return docs;
  }
};

// ===================== Dataset 9: Niagara personnel (Group 4) ============
class PersonnelGenerator : public DatasetGenerator {
 public:
  DatasetInfo info() const override {
    return {9, "Niagara collection", "personnel.dtd", 4, 4};
  }

  std::vector<GeneratedDocument> Generate(uint64_t seed) const override {
    const std::vector<Vocab> kCities = {
        {"washington", "washington.city.n"}, {"paris", "paris.city.n"},
        {"london", "london.city.n"},
    };
    const std::vector<Vocab> kStates = {
        {"virginia", "virginia.state.n"}, {"texas", "texas.state.n"},
        {"california", "california.state.n"},
        {"washington", "washington.state.n"},
    };
    const std::vector<Vocab> kRoles = {
        {"manager", "manager.n"},     {"secretary", "secretary.n"},
        {"engineer", "engineer.n"},   {"programmer", "programmer.n"},
    };
    std::vector<GeneratedDocument> docs;
    for (int d = 0; d < info().doc_count; ++d) {
      Rng rng(seed + 101 + static_cast<uint64_t>(d) * 982451653);
      DocBuilder b("personnel");
      b.Gold("personnel", "personnel.n");
      int persons = 2 + static_cast<int>(rng.UniformInt(2));
      for (int p = 0; p < persons; ++p) {
        xml::Node* person = b.Elem(b.root(), "person", "person.n");
        xml::Node* name = b.Elem(person, "name", "name.n");
        // <given>/<family> per personnel.dtd: "given" has no lexicon
        // entry (unresolvable for every system), "family" only the
        // household sense, which is what an annotator limited to the
        // lexicon inventory would pick.
        b.ElemWithText(name, "given", nullptr, "grace");
        b.ElemWithText(name, "family", "family.n", "kelly");
        b.ElemWithText(person, "email", "email.n",
                       StrFormat("user%d at example dot com",
                                 (int)rng.UniformInt(100)));
        xml::Node* address = b.Elem(person, "address",
                                    "address.location.n");
        b.ElemWithText(address, "street", "street.n",
                       StrFormat("%d main", 1 + (int)rng.UniformInt(900)));
        b.ElemWithVocab(address, "city", "city.n", Pick(rng, kCities));
        b.ElemWithVocab(address, "state", "state.province.n",
                        Pick(rng, kStates));
        b.ElemWithText(address, "zip", "zip_code.n",
                       StrFormat("%05d", (int)rng.UniformInt(99999)));
        b.ElemWithVocab(person, "office", "office.position.n",
                        Pick(rng, kRoles));
      }
      docs.push_back(b.Finish(StrFormat("personnel_%02d.xml", d)));
    }
    return docs;
  }
};

// ===================== Dataset 10: Niagara club (Group 4) ================
class ClubGenerator : public DatasetGenerator {
 public:
  DatasetInfo info() const override {
    return {10, "Niagara collection", "club.dtd", 4, 4};
  }

  std::vector<GeneratedDocument> Generate(uint64_t seed) const override {
    const std::vector<Vocab> kSports = {
        {"golf", "golf.n"},           {"tennis", "tennis.n"},
        {"chess", "chess.n"},
    };
    const std::vector<Vocab> kCities = {
        {"london", "london.city.n"},  {"paris", "paris.city.n"},
    };
    std::vector<GeneratedDocument> docs;
    for (int d = 0; d < info().doc_count; ++d) {
      Rng rng(seed + 113 + static_cast<uint64_t>(d) * 217645199);
      DocBuilder b("club");
      b.Gold("club", "club.association.n");
      b.ElemWithVocab(b.root(), "name", "name.n", Pick(rng, kSports));
      b.ElemWithVocab(b.root(), "location", "location.n",
                      Pick(rng, kCities));
      b.ElemWithVocab(b.root(), "sport", "sport.n", Pick(rng, kSports));
      b.ElemWithText(b.root(), "president", "president.chair.n",
                     "stewart");
      b.Gold("stewart", "jackie_stewart.n");
      xml::Node* members = b.Elem(b.root(), "members", "member.n");
      int member_count = 2 + static_cast<int>(rng.UniformInt(3));
      for (int m = 0; m < member_count; ++m) {
        xml::Node* member = b.Elem(members, "member", "member.n");
        b.ElemWithText(member, "name", "name.n",
                       StrFormat("member%d", m));
        b.ElemWithVocab(member, "hobby", "hobby.n", Pick(rng, kSports));
        b.ElemWithText(member, "dues", "dues.n",
                       StrFormat("%d", 20 + (int)rng.UniformInt(100)));
      }
      docs.push_back(b.Finish(StrFormat("club_%02d.xml", d)));
    }
    return docs;
  }
};

// ===================== Giant documents (gen-corpus --giant) ==============

/// Vocabulary shared by the giant profiles: every word resolves in the
/// mini-WordNet, so tag and token interning does real lexicon work.
const std::vector<Vocab>& GiantWords() {
  static const std::vector<Vocab>* kWords = new std::vector<Vocab>{
      {"star", "star.celestial.n"},  {"light", "light.n"},
      {"sun", "sun.n"},              {"shade", "shade.n"},
      {"king", "king.n"},            {"prince", "prince.n"},
      {"word", "word.n"},            {"name", "name.n"},
      {"verse", "verse.line.n"},     {"poem", "poem.n"},
      {"club", "club.golf.n"},       {"record", "record.disc.n"},
      {"book", "book.n"},            {"album", "album.n"},
      {"music", "music.n.art"},      {"sport", "sport.n"},
      {"game", "game.n"},            {"food", "food.n"},
      {"title", "title.name.n"},     {"house", "firm.n"},
      {"press", "press.n"},          {"member", "member.limb.n"},
      {"city", "city.n"},            {"tree", "tree.diagram.n"},
  };
  return *kWords;
}

/// Appends `words` space-separated vocabulary words.
void AppendGiantText(std::string& out, Rng& rng, int words) {
  const std::vector<Vocab>& pool = GiantWords();
  for (int w = 0; w < words; ++w) {
    if (w != 0) out += ' ';
    out += pool[rng.UniformInt(pool.size())].word;
  }
}

/// One deep block: an element spine `depth` levels tall with a few
/// text leaves at the bottom. `depth` is capped well under the default
/// ParseLimits::max_depth = 256 budget (the root adds one more level).
void AppendDeepBlock(std::string& out, Rng& rng) {
  const int depth = 32 + static_cast<int>(rng.UniformInt(32));
  for (int i = 0; i < depth; ++i) {
    out += (i % 2 == 0) ? "<section>" : "<chapter>";
  }
  const int lines = 3 + static_cast<int>(rng.UniformInt(4));
  for (int l = 0; l < lines; ++l) {
    out += "<line>";
    AppendGiantText(out, rng, 3 + static_cast<int>(rng.UniformInt(4)));
    out += "</line>";
  }
  for (int i = depth - 1; i >= 0; --i) {
    out += (i % 2 == 0) ? "</section>" : "</chapter>";
  }
  out += '\n';
}

/// One wide block: a flat fan of sibling records with attributes.
void AppendWideBlock(std::string& out, Rng& rng) {
  const std::vector<Vocab>& pool = GiantWords();
  out += "<records>";
  const int fan = 48 + static_cast<int>(rng.UniformInt(48));
  for (int r = 0; r < fan; ++r) {
    const Vocab& kind = pool[rng.UniformInt(pool.size())];
    out += StrFormat("<record id=\"%d\" kind=\"%s\"><title>",
                     static_cast<int>(rng.UniformInt(1 << 20)), kind.word);
    AppendGiantText(out, rng, 2 + static_cast<int>(rng.UniformInt(3)));
    out += StrFormat("</title><price>%d</price></record>",
                     1 + static_cast<int>(rng.UniformInt(500)));
  }
  out += "</records>\n";
}

}  // namespace

std::vector<GeneratedDocument> GiantDocuments(int count,
                                              size_t target_bytes,
                                              uint64_t seed) {
  std::vector<GeneratedDocument> docs;
  docs.reserve(static_cast<size_t>(count < 0 ? 0 : count));
  for (int d = 0; d < count; ++d) {
    Rng rng(seed + 131 + static_cast<uint64_t>(d) * 6700417);
    GeneratedDocument doc;
    doc.name = StrFormat("giant_%03d.xml", d);
    std::string& xml = doc.xml;
    xml.reserve(target_bytes + (64u << 10));
    xml += "<?xml version=\"1.0\"?>\n<library>\n";
    // Even documents lead with deep spines, odd with wide fans; both
    // profiles interleave 3:1 so every giant doc exercises recursion
    // depth and sibling fan-out together.
    const bool deep_major = (d % 2 == 0);
    size_t block = 0;
    while (xml.size() < target_bytes) {
      const bool deep = (block++ % 4 != 3) == deep_major;
      if (deep) {
        AppendDeepBlock(xml, rng);
      } else {
        AppendWideBlock(xml, rng);
      }
    }
    xml += "</library>\n";
    docs.push_back(std::move(doc));
  }
  return docs;
}

const std::vector<const DatasetGenerator*>& AllDatasets() {
  static const std::vector<const DatasetGenerator*>* kAll = [] {
    auto* v = new std::vector<const DatasetGenerator*>();
    v->push_back(new ShakespeareGenerator());
    v->push_back(new AmazonGenerator());
    v->push_back(new SigmodGenerator());
    v->push_back(new ImdbGenerator());
    v->push_back(new BibGenerator());
    v->push_back(new CdCatalogGenerator());
    v->push_back(new FoodMenuGenerator());
    v->push_back(new PlantCatalogGenerator());
    v->push_back(new PersonnelGenerator());
    v->push_back(new ClubGenerator());
    return v;
  }();
  return *kAll;
}

std::vector<GeneratedDocument> Figure1Documents() {
  std::vector<GeneratedDocument> docs;
  {
    GeneratedDocument doc;
    doc.name = "figure1_doc1.xml";
    doc.xml = R"(<?xml version="1.0"?>
<Films>
  <Picture title="Rear Window">
    <Director>Hitchcock</Director>
    <Year>1954</Year>
    <Genre>mystery</Genre>
    <Cast>
      <Star>Stewart</Star>
      <Star>Kelly</Star>
    </Cast>
    <Plot>A wheelchair bound photographer spies on his neighbors</Plot>
  </Picture>
</Films>)";
    doc.gold = {
        {"film", "movie.n"},          {"picture", "movie.n"},
        {"director", "director.stage.n"}, {"year", "year.calendar.n"},
        {"genre", "genre.kind.n"},    {"cast", "cast.actors.n"},
        {"star", "star.performer.n"}, {"plot", "plot.story.n"},
        {"stewart", "james_stewart.n"}, {"kelly", "grace_kelly.n"},
        {"hitchcock", "alfred_hitchcock.n"}, {"mystery", "mystery.story.n"},
        {"title", "title.name.n"},    {"window", "window.opening.n"},
    };
    docs.push_back(std::move(doc));
  }
  {
    GeneratedDocument doc;
    doc.name = "figure1_doc2.xml";
    doc.xml = R"(<?xml version="1.0"?>
<movies>
  <movie year="1954">
    <name>Rear Window</name>
    <directed_by>Alfred Hitchcock</directed_by>
    <actors>
      <actor>
        <FirstName>Grace</FirstName>
        <LastName>Kelly</LastName>
      </actor>
      <actor>
        <FirstName>James</FirstName>
        <LastName>Stewart</LastName>
      </actor>
    </actors>
  </movie>
</movies>)";
    doc.gold = {
        {"movie", "movie.n"},         {"year", "year.calendar.n"},
        {"name", "name.n"},           {"actor", "actor.n"},
        {"first_name", "first_name.n"}, {"last_name", "last_name.n"},
        {"kelly", "grace_kelly.n"},   {"stewart", "james_stewart.n"},
        {"hitchcock", "alfred_hitchcock.n"},
        {"directed_by", "direct.film.v"},
    };
    docs.push_back(std::move(doc));
  }
  return docs;
}

}  // namespace xsdf::datasets
