#include "core/scores.h"

#include <algorithm>

#include "core/tree_builder.h"

namespace xsdf::core {

namespace {

/// Best similarity between one candidate sense and any sense of a
/// context token; 0 when the token is unknown.
double MaxTokenSimilarity(const wordnet::SemanticNetwork& network,
                          const sim::CombinedMeasure& measure,
                          wordnet::ConceptId sense,
                          const std::string& token) {
  double best = 0.0;
  for (wordnet::ConceptId other : network.Senses(token)) {
    best = std::max(best, measure.Similarity(network, sense, other));
  }
  return best;
}

/// Similarity between a (possibly compound) candidate and one context
/// label. For simple context labels the compound candidate is compared
/// exactly per Eq. 10: max over context senses of the average of the
/// two token-sense similarities. For compound context labels each
/// context token is matched independently and the results averaged.
double CandidateContextSimilarity(const wordnet::SemanticNetwork& network,
                                  const sim::CombinedMeasure& measure,
                                  const SenseCandidate& candidate,
                                  const std::string& context_label) {
  std::vector<std::string> tokens =
      LabelSenseTokens(network, context_label);
  if (tokens.empty()) return 0.0;

  double total = 0.0;
  int counted = 0;
  for (const std::string& token : tokens) {
    const std::vector<wordnet::ConceptId>& senses = network.Senses(token);
    if (senses.empty()) continue;
    double best = 0.0;
    for (wordnet::ConceptId other : senses) {
      double sim = measure.Similarity(network, candidate.primary, other);
      if (candidate.is_compound()) {
        sim = (sim +
               measure.Similarity(network, candidate.secondary, other)) /
              2.0;
      }
      best = std::max(best, sim);
    }
    total += best;
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

}  // namespace

std::vector<SenseCandidate> EnumerateCandidates(
    const wordnet::SemanticNetwork& network, const std::string& label) {
  std::vector<SenseCandidate> candidates;
  std::vector<std::string> tokens = LabelSenseTokens(network, label);
  // Keep only sense-bearing tokens.
  std::vector<const std::vector<wordnet::ConceptId>*> sense_lists;
  for (const std::string& token : tokens) {
    const std::vector<wordnet::ConceptId>& senses = network.Senses(token);
    if (!senses.empty()) sense_lists.push_back(&senses);
  }
  if (sense_lists.empty()) return candidates;
  if (sense_lists.size() == 1) {
    for (wordnet::ConceptId sense : *sense_lists[0]) {
      candidates.push_back({sense, wordnet::kInvalidConcept});
    }
    return candidates;
  }
  // Compound: combinations over the first two sense-bearing tokens
  // (tags with more than two terms are unlikely in practice — paper
  // §3.2 footnote).
  for (wordnet::ConceptId p : *sense_lists[0]) {
    for (wordnet::ConceptId q : *sense_lists[1]) {
      candidates.push_back({p, q});
    }
  }
  return candidates;
}

double ConceptScore(const wordnet::SemanticNetwork& network,
                    const sim::CombinedMeasure& measure,
                    const SenseCandidate& candidate, const Sphere& sphere,
                    const ContextVector& vector) {
  if (sphere.members.empty()) return 0.0;
  double sum = 0.0;
  bool center_skipped = false;
  for (const SphereMember& member : sphere.members) {
    if (!center_skipped && member.distance == 0) {
      center_skipped = true;  // skip exactly the center occurrence
      continue;
    }
    double sim =
        CandidateContextSimilarity(network, measure, candidate,
                                   member.label);
    if (sim <= 0.0) continue;
    sum += sim * vector.Weight(member.label);
  }
  return sum / static_cast<double>(sphere.size());
}

double ContextScore(const wordnet::SemanticNetwork& network,
                    const SenseCandidate& candidate,
                    const ContextVector& xml_vector, int radius,
                    VectorSimilarity vector_similarity) {
  Sphere concept_sphere =
      candidate.is_compound()
          ? BuildCompoundConceptSphere(network, candidate.primary,
                                       candidate.secondary, radius)
          : BuildConceptSphere(network, candidate.primary, radius);
  ContextVector concept_vector(concept_sphere);
  return vector_similarity == VectorSimilarity::kJaccard
             ? xml_vector.Jaccard(concept_vector)
             : xml_vector.Cosine(concept_vector);
}

double CombinedScore(const wordnet::SemanticNetwork& network,
                     const sim::CombinedMeasure& measure,
                     const SenseCandidate& candidate, const Sphere& sphere,
                     const ContextVector& xml_vector, int radius,
                     const CombinationWeights& weights,
                     VectorSimilarity vector_similarity) {
  double score = 0.0;
  if (weights.concept_weight > 0.0) {
    score += weights.concept_weight *
             ConceptScore(network, measure, candidate, sphere, xml_vector);
  }
  if (weights.context_weight > 0.0) {
    score += weights.context_weight *
             ContextScore(network, candidate, xml_vector, radius,
                          vector_similarity);
  }
  return score;
}

}  // namespace xsdf::core
