#ifndef XSDF_RUNTIME_JOB_QUEUE_H_
#define XSDF_RUNTIME_JOB_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace xsdf::runtime {

/// A bounded multi-producer/multi-consumer queue (mutex + two condition
/// variables). Push blocks while the queue is full; Pop blocks while it
/// is empty. Close() wakes everyone: pending items still drain, then
/// Pop returns nullopt — the worker shutdown signal.
template <typename T>
class BoundedJobQueue {
 public:
  explicit BoundedJobQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedJobQueue(const BoundedJobQueue&) = delete;
  BoundedJobQueue& operator=(const BoundedJobQueue&) = delete;

  /// Blocks until there is room (or the queue closes). Returns false —
  /// and drops `item` — when the queue is closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking Push: enqueues only when there is room right now.
  /// Returns false — and drops `item` — when the queue is full or
  /// closed. This is the admission-control path: an overloaded server
  /// rejects instead of stalling its acceptor behind the queue.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available (or the queue closes and
  /// drains). Returns nullopt only when closed and empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Idempotent; after this, Push fails and Pop drains then ends.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace xsdf::runtime

#endif  // XSDF_RUNTIME_JOB_QUEUE_H_
