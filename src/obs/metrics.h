#ifndef XSDF_OBS_METRICS_H_
#define XSDF_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace xsdf::obs {

/// Stripe count for the hot-path instruments (power of two). Each
/// stripe lives on its own cache line, so concurrent workers mostly
/// bump disjoint lines; snapshots fold the stripes back together.
inline constexpr size_t kMetricStripes = 8;

/// The stripe the calling thread writes to — a hash of the thread id,
/// computed once per thread.
inline size_t MetricStripeIndex() {
  thread_local const size_t stripe =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return stripe & (kMetricStripes - 1);
}

/// A monotonically increasing counter. Increment is one relaxed
/// fetch_add on the calling thread's stripe; Value folds the stripes
/// (not linearizable against concurrent increments, like every
/// snapshot in this registry).
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    cells_[MetricStripeIndex()].value.fetch_add(n,
                                                std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() {
    for (Cell& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  Cell cells_[kMetricStripes];
};

/// A last-writer-wins instantaneous value (queue depths, cache
/// occupancy published at export time).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A point-in-time copy of one histogram, detached from its atomics.
/// `bounds` are inclusive upper bucket bounds; `counts` has one extra
/// trailing element for values above the last bound. Snapshots from
/// different workers/engines merge as long as the bounds agree — the
/// unit of aggregation across processes or runs.
struct HistogramSnapshot {
  std::string name;
  std::vector<uint64_t> bounds;
  std::vector<uint64_t> counts;  ///< bounds.size() + 1 entries
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }

  /// Upper bound of the bucket holding the p-th fraction of samples
  /// (p in [0, 1]); `max` for the overflow bucket, 0 when empty.
  uint64_t ApproxPercentile(double p) const;

  /// Adds `other`'s buckets into this snapshot. False (and no change)
  /// when the bucket bounds differ.
  bool Merge(const HistogramSnapshot& other);
};

/// A fixed-bucket histogram: Record() is a bucket search over a small
/// sorted bound array plus three relaxed fetch_adds on the calling
/// thread's stripe (bucket, count, sum) — no locks anywhere on the
/// record path. Bounds are fixed at construction; values above the
/// last bound land in an overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<uint64_t> bounds);

  void Record(uint64_t value);
  HistogramSnapshot Snapshot() const;
  void Reset();

  const std::vector<uint64_t>& bounds() const { return bounds_; }

  /// The default latency bucketing: a 1-2-5 series from 1 µs to 1 s.
  static const std::vector<uint64_t>& LatencyBoundsUs();

 private:
  struct alignas(64) Stripe {
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };

  std::vector<uint64_t> bounds_;
  Stripe stripes_[kMetricStripes];
};

/// Every instrument of one registry, detached from the live atomics.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Folds `other` in: counters/gauges sum by name (union of names),
  /// histograms merge by name. False when a histogram exists in both
  /// with different bounds (this snapshot is left partially merged
  /// only for instruments processed before the mismatch — treat a
  /// false return as fatal).
  bool Merge(const MetricsSnapshot& other);

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {"bounds": [...], "counts": [...], "count": n, "sum": n,
  /// "max": n}}} — the `--metrics-out` file format.
  std::string ToJson() const;
};

/// Named instrument registry. Get* registers on first use and returns
/// a stable pointer; callers resolve handles once (at construction
/// time) and then record lock-free. Instruments are ordered by name in
/// snapshots, so exports are deterministic.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// `bounds` applies only when `name` is new; an existing histogram
  /// is returned as-is (first registration wins).
  Histogram* GetHistogram(
      std::string_view name,
      const std::vector<uint64_t>& bounds = Histogram::LatencyBoundsUs());

  MetricsSnapshot Snapshot() const;
  std::string ToJson() const { return Snapshot().ToJson(); }

  /// Zeroes counters and histograms (gauges keep their last value).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace xsdf::obs

#endif  // XSDF_OBS_METRICS_H_
