// Semantic-aware keyword query expansion (a motivating application
// from the paper's §1): resolve the query keyword to a concept in the
// context of a disambiguated corpus, then expand it with synonyms and
// taxonomic neighbors so retrieval matches documents that never
// contain the literal keyword.
//
//   build/examples/query_expansion [keyword]

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "core/disambiguator.h"
#include "datasets/generator.h"
#include "wordnet/mini_wordnet.h"

namespace {

/// Expansion terms for a concept: its synonyms plus the lemmas of its
/// direct hypernyms/hyponyms.
std::set<std::string> ExpandConcept(
    const xsdf::wordnet::SemanticNetwork& network,
    xsdf::wordnet::ConceptId id) {
  std::set<std::string> terms;
  const auto& concept_node = network.GetConcept(id);
  terms.insert(concept_node.synonyms.begin(),
               concept_node.synonyms.end());
  for (const auto& edge : concept_node.edges) {
    if (edge.relation == xsdf::wordnet::Relation::kHypernym ||
        edge.relation == xsdf::wordnet::Relation::kHyponym ||
        edge.relation == xsdf::wordnet::Relation::kInstanceHyponym) {
      const auto& neighbor = network.GetConcept(edge.target);
      terms.insert(neighbor.synonyms.begin(), neighbor.synonyms.end());
    }
  }
  return terms;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string keyword = argc > 1 ? argv[1] : "star";

  auto network = xsdf::wordnet::BuildMiniWordNet();
  if (!network.ok()) return 1;
  xsdf::core::Disambiguator disambiguator(&*network);

  // Corpus: the IMDB family documents.
  auto docs = xsdf::datasets::AllDatasets()[3]->Generate(7);
  std::printf("Corpus: %zu IMDB documents. Query keyword: \"%s\" (%d "
              "senses in the lexicon)\n\n",
              docs.size(), keyword.c_str(),
              network->SenseCount(keyword));

  // Disambiguate the corpus and collect the senses actually used for
  // the keyword in context.
  std::set<xsdf::wordnet::ConceptId> used_senses;
  for (const auto& doc : docs) {
    auto result = disambiguator.RunOnXml(doc.xml);
    if (!result.ok()) continue;
    for (const auto& node : result->tree.nodes()) {
      if (node.label != keyword) continue;
      auto it = result->assignments.find(node.id);
      if (it != result->assignments.end()) {
        used_senses.insert(it->second.sense.primary);
      }
    }
  }

  if (used_senses.empty()) {
    std::printf("The keyword does not occur in the corpus; expanding "
                "every lexicon sense instead.\n");
    for (auto id : network->Senses(keyword)) used_senses.insert(id);
  }

  for (xsdf::wordnet::ConceptId id : used_senses) {
    const auto& concept_node = network->GetConcept(id);
    std::printf("In-context sense: %s — %s\n",
                concept_node.label().c_str(),
                concept_node.gloss.c_str());
    std::printf("  expansion terms:");
    int printed = 0;
    for (const std::string& term : ExpandConcept(*network, id)) {
      if (term == keyword) continue;
      std::printf(" %s", term.c_str());
      if (++printed >= 14) break;
    }
    std::printf("\n\n");
  }

  std::printf(
      "Without disambiguation, expanding \"%s\" would drag in every "
      "sense's neighbors\n(constellations next to actors); with XSDF "
      "the expansion follows the corpus\nmeaning only — the query "
      "rewriting scenario of the paper's introduction.\n",
      keyword.c_str());
  return 0;
}
