// Replays the checked-in fuzz corpora through the fuzzing oracles in
// plain gtest, so every inputs that ever crashed a parser (and every
// seed input) is re-checked by ordinary ctest runs on every
// configuration — no sanitizer runtime or libFuzzer required. The
// oracles abort() on violation, which gtest reports as a crashed test.
//
// Layout (relative to the repo root, baked in via XSDF_SOURCE_DIR):
//   fuzz/corpus/{xml,wndb,tree,snapshot}                  seed inputs
//   fuzz/corpus/regressions/<target>/                     past crashes

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harnesses.h"

namespace xsdf {
namespace {

using DriveFn = void (*)(const uint8_t*, size_t);

std::vector<std::filesystem::path> CorpusFiles(const std::string& subdir) {
  std::filesystem::path dir =
      std::filesystem::path(XSDF_SOURCE_DIR) / "fuzz" / "corpus" / subdir;
  std::vector<std::filesystem::path> files;
  if (!std::filesystem::exists(dir)) return files;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

void ReplayDirectory(const std::string& subdir, DriveFn drive,
                     bool required) {
  std::vector<std::filesystem::path> files = CorpusFiles(subdir);
  if (required) {
    ASSERT_FALSE(files.empty())
        << "no corpus files under fuzz/corpus/" << subdir;
  }
  for (const auto& path : files) {
    SCOPED_TRACE(path.string());
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "unreadable corpus file";
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    drive(reinterpret_cast<const uint8_t*>(contents.data()),
          contents.size());
  }
}

TEST(FuzzRegressionTest, XmlSeedCorpusReplaysClean) {
  ReplayDirectory("xml", fuzz::DriveXmlParser, /*required=*/true);
}

TEST(FuzzRegressionTest, WndbSeedCorpusReplaysClean) {
  ReplayDirectory("wndb", fuzz::DriveWndbParser, /*required=*/true);
}

TEST(FuzzRegressionTest, TreeSeedCorpusReplaysClean) {
  ReplayDirectory("tree", fuzz::DriveLabeledTree, /*required=*/true);
}

TEST(FuzzRegressionTest, SnapshotSeedCorpusReplaysClean) {
  ReplayDirectory("snapshot", fuzz::DriveSnapshotLoader, /*required=*/true);
}

// Past crashing inputs, checked in under fuzz/corpus/regressions/ with
// one file per fixed bug (named after the defect). These directories
// may be empty in a tree where no crash has been found yet; the test
// then just verifies the directory scan itself.
TEST(FuzzRegressionTest, XmlCrashRegressionsStayFixed) {
  ReplayDirectory("regressions/xml", fuzz::DriveXmlParser,
                  /*required=*/false);
}

TEST(FuzzRegressionTest, WndbCrashRegressionsStayFixed) {
  ReplayDirectory("regressions/wndb", fuzz::DriveWndbParser,
                  /*required=*/false);
}

TEST(FuzzRegressionTest, TreeCrashRegressionsStayFixed) {
  ReplayDirectory("regressions/tree", fuzz::DriveLabeledTree,
                  /*required=*/false);
}

TEST(FuzzRegressionTest, SnapshotCrashRegressionsStayFixed) {
  ReplayDirectory("regressions/snapshot", fuzz::DriveSnapshotLoader,
                  /*required=*/false);
}

}  // namespace
}  // namespace xsdf
