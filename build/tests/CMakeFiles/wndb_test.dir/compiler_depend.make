# Empty compiler generated dependencies file for wndb_test.
# This may be replaced when dependencies are built.
