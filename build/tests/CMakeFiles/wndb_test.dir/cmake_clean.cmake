file(REMOVE_RECURSE
  "CMakeFiles/wndb_test.dir/wndb_test.cc.o"
  "CMakeFiles/wndb_test.dir/wndb_test.cc.o.d"
  "wndb_test"
  "wndb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wndb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
