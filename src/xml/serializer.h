#ifndef XSDF_XML_SERIALIZER_H_
#define XSDF_XML_SERIALIZER_H_

#include <string>
#include <string_view>

#include "xml/dom.h"

namespace xsdf::xml {

/// Options controlling XML serialization.
struct SerializeOptions {
  /// Indent child elements by this many spaces per level; 0 emits a
  /// single line.
  int indent = 2;
  /// Emit the `<?xml version=... ?>` declaration.
  bool declaration = true;
};

/// Escapes the five XML special characters for character data.
std::string EscapeText(std::string_view text);

/// Escapes special characters for a double-quoted attribute value.
std::string EscapeAttribute(std::string_view value);

/// Serializes `node` (and its subtree) to XML text.
std::string Serialize(const Node& node, const SerializeOptions& options = {});

/// Serializes the whole document to XML text.
std::string Serialize(const Document& doc,
                      const SerializeOptions& options = {});

}  // namespace xsdf::xml

#endif  // XSDF_XML_SERIALIZER_H_
