// Tests for the interned, arena-backed front end: the bump arena, the
// engine-wide label id space (cross-document id stability, exact-
// spelling injectivity), and the headline contract — the id-based
// sphere/vector/scoring pipeline produces BIT-identical disambiguation
// output to the legacy string pipeline, single-threaded and through
// the engine at 1 and 8 workers, including the `explain` audit JSON.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/arena.h"
#include "core/disambiguator.h"
#include "core/label_space.h"
#include "core/scores.h"
#include "core/tree_builder.h"
#include "datasets/generator.h"
#include "runtime/engine.h"
#include "wordnet/mini_wordnet.h"
#include "xml/parser.h"

namespace xsdf {
namespace {

const wordnet::SemanticNetwork& Network() {
  static const wordnet::SemanticNetwork* network = [] {
    auto result = wordnet::BuildMiniWordNet();
    return new wordnet::SemanticNetwork(std::move(result).value());
  }();
  return *network;
}

// ============================ Arena ===============================

TEST(ArenaTest, BumpAllocationsAreAlignedAndCounted) {
  Arena arena;
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.block_count(), 0u);
  void* a = arena.Allocate(3, 1);
  void* b = arena.Allocate(8, 8);
  void* c = arena.Allocate(1, 64);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 64, 0u);
  EXPECT_GE(arena.bytes_used(), 3u + 8u + 1u);
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(ArenaTest, GrowsBlocksGeometrically) {
  Arena arena;
  for (int i = 0; i < 2000; ++i) arena.Allocate(64, 8);
  EXPECT_GE(arena.bytes_used(), 2000u * 64u);
  EXPECT_GT(arena.block_count(), 1u) << "growth must add blocks";
  EXPECT_LT(arena.block_count(), 40u) << "blocks must grow geometrically";
}

TEST(ArenaTest, OversizedAllocationGetsItsOwnBlock) {
  Arena arena;
  void* big = arena.Allocate(1 << 20, 16);
  ASSERT_NE(big, nullptr);
  EXPECT_GE(arena.bytes_reserved(), static_cast<size_t>(1 << 20));
}

TEST(ArenaTest, CopyStringIsStableAndDetached) {
  Arena arena;
  std::string original = "semantic ambiguity";
  std::string_view view = arena.CopyString(original);
  original.assign(original.size(), 'x');  // mutate the source
  EXPECT_EQ(view, "semantic ambiguity");
  EXPECT_EQ(arena.CopyString("").size(), 0u);
}

struct DtorRecorder {
  std::vector<int>* order;
  int id;
  ~DtorRecorder() { order->push_back(id); }
};

TEST(ArenaTest, RunsOwnedDestructorsInReverseOrder) {
  std::vector<int> order;
  {
    Arena arena;
    arena.New<DtorRecorder>(&order, 1);
    arena.New<DtorRecorder>(&order, 2);
    arena.New<DtorRecorder>(&order, 3);
    // Trivially destructible types must not register anything.
    arena.New<int>(7);
  }
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));
}

TEST(ArenaTest, ResetReturnsToFreshState) {
  std::vector<int> order;
  Arena arena;
  arena.New<DtorRecorder>(&order, 1);
  arena.Allocate(1 << 16);
  arena.Reset();
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  EXPECT_EQ(arena.block_count(), 0u);
  // And the arena is usable again.
  EXPECT_EQ(arena.CopyString("again"), "again");
}

TEST(ArenaTest, DocumentParseLandsInArena) {
  auto doc = xml::Parse("<a b=\"c\"><d>text value here</d><e/></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_GT(doc->arena().bytes_used(), 0u);
  // Moving the document must not invalidate its nodes (the arena is
  // heap-held and moves by pointer).
  xml::Document moved = std::move(doc).value();
  ASSERT_NE(moved.root(), nullptr);
  EXPECT_EQ(moved.root()->name(), "a");
  ASSERT_EQ(moved.root()->children().size(), 2u);
  EXPECT_EQ(moved.root()->children()[0]->name(), "d");
}

// ========================== LabelSpace ============================

TEST(LabelSpaceTest, NetworkLabelsKeepInternerIds) {
  core::LabelSpace space(&Network());
  uint32_t id = space.Resolve("star");
  EXPECT_LT(id, space.network_size());
  EXPECT_EQ(Network().interner().Find("star"), id);
  EXPECT_EQ(space.Spelling(id), "star");
  EXPECT_EQ(space.overflow_size(), 0u);
}

TEST(LabelSpaceTest, OutOfVocabularyLabelsOverflowStably) {
  core::LabelSpace space(&Network());
  uint32_t a1 = space.Resolve("zzz_not_a_lemma");
  uint32_t a2 = space.Resolve("zzz_not_a_lemma");
  uint32_t b = space.Resolve("another_unknown");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_GE(a1, static_cast<uint32_t>(space.network_size()));
  EXPECT_EQ(space.Spelling(a1), "zzz_not_a_lemma");
  EXPECT_EQ(space.overflow_size(), 2u);
  EXPECT_EQ(space.Find("zzz_not_a_lemma"), a1);
  EXPECT_EQ(space.Find("never_resolved"), TokenInterner::kNotFound);
}

TEST(LabelSpaceTest, CandidatesByIdMatchStringEnumeration) {
  core::LabelSpace space(&Network());
  for (const char* label :
       {"star", "movie", "kelly", "first_name", "zzz_not_a_lemma", ""}) {
    uint32_t id = space.Resolve(label);
    EXPECT_EQ(core::EnumerateCandidatesById(space, id),
              core::EnumerateCandidates(Network(), label))
        << label;
  }
}

TEST(LabelSpaceTest, CrossDocumentInterningIsStable) {
  core::LabelSpace space(&Network());
  auto tree1 = core::BuildTreeFromXml(
      "<films><star>Kelly</star><custom_tag>x</custom_tag></films>",
      Network(), /*include_values=*/true, &space);
  auto tree2 = core::BuildTreeFromXml(
      "<catalog><star>Stewart</star><custom_tag>y</custom_tag></catalog>",
      Network(), /*include_values=*/true, &space);
  ASSERT_TRUE(tree1.ok() && tree2.ok());
  EXPECT_TRUE(tree1->has_label_ids());
  EXPECT_TRUE(tree2->has_label_ids());
  // Shared vocabulary (in-network and out-of-vocabulary alike) must
  // resolve to the same ids in both documents; distinct labels to
  // distinct ids (exact-spelling injectivity).
  std::unordered_map<std::string, uint32_t> seen;
  for (const auto* tree : {&tree1.value(), &tree2.value()}) {
    for (const auto& node : tree->nodes()) {
      uint32_t id = tree->label_id(node.id);
      ASSERT_NE(id, xml::kNoLabelId);
      auto [it, inserted] = seen.emplace(node.label, id);
      EXPECT_EQ(it->second, id) << "label '" << node.label
                                << "' got two different ids";
    }
  }
  std::unordered_map<uint32_t, std::string> reverse;
  for (const auto& [label, id] : seen) {
    auto [it, inserted] = reverse.emplace(id, label);
    EXPECT_TRUE(inserted) << "id " << id << " names both '" << it->second
                          << "' and '" << label << "'";
  }
}

TEST(LabelSpaceTest, ConceptLabelIdsJoinTheSameSpace) {
  core::LabelSpace space(&Network());
  const auto& network = Network();
  for (const auto& entry : network.concepts()) {
    uint32_t token_id = network.LabelTokenId(entry.id);
    ASSERT_NE(token_id, TokenInterner::kNotFound) << entry.label();
    EXPECT_EQ(space.Resolve(entry.label()), token_id) << entry.label();
  }
}

// ===================== Id-path bit identity =======================

std::vector<std::string> CorpusXml() {
  std::vector<std::string> xml;
  for (const auto& doc : datasets::Figure1Documents()) xml.push_back(doc.xml);
  const auto& generators = datasets::AllDatasets();
  for (size_t g = 0; g < 2 && g < generators.size(); ++g) {
    for (const auto& doc : generators[g]->Generate(/*seed=*/11)) {
      xml.push_back(doc.xml);
    }
  }
  return xml;
}

core::DisambiguatorOptions LegacyOptions() {
  core::DisambiguatorOptions options;
  options.use_id_frontend = false;
  return options;
}

void ExpectBitIdentical(const core::SemanticTree& id_result,
                        const core::SemanticTree& legacy_result) {
  ASSERT_EQ(id_result.assignments.size(), legacy_result.assignments.size());
  for (const auto& [node, assignment] : id_result.assignments) {
    auto it = legacy_result.assignments.find(node);
    ASSERT_NE(it, legacy_result.assignments.end()) << "node " << node;
    EXPECT_EQ(assignment.sense, it->second.sense) << "node " << node;
    // Bitwise double equality — the id pipeline's arithmetic must be
    // the legacy pipeline's arithmetic, not merely close to it.
    EXPECT_EQ(assignment.score, it->second.score) << "node " << node;
    EXPECT_EQ(assignment.ambiguity, it->second.ambiguity);
    EXPECT_EQ(assignment.candidate_count, it->second.candidate_count);
  }
  EXPECT_EQ(core::SemanticTreeToXml(id_result, Network()),
            core::SemanticTreeToXml(legacy_result, Network()));
}

TEST(IdFrontendBitIdentityTest, SingleThreadedConceptProcess) {
  core::Disambiguator id_system(&Network());
  core::Disambiguator legacy_system(&Network(), LegacyOptions());
  for (const std::string& xml : CorpusXml()) {
    auto id_result = id_system.RunOnXml(xml);
    auto legacy_result = legacy_system.RunOnXml(xml);
    ASSERT_EQ(id_result.ok(), legacy_result.ok());
    if (!id_result.ok()) continue;
    ExpectBitIdentical(*id_result, *legacy_result);
  }
}

TEST(IdFrontendBitIdentityTest, CombinedProcessBothVectorSimilarities) {
  for (auto vector_similarity : {core::VectorSimilarity::kCosine,
                                 core::VectorSimilarity::kJaccard}) {
    core::DisambiguatorOptions id_options;
    id_options.process = core::DisambiguationProcess::kCombined;
    id_options.combination_weights = {0.6, 0.4};
    id_options.vector_similarity = vector_similarity;
    core::DisambiguatorOptions legacy_options = id_options;
    legacy_options.use_id_frontend = false;
    core::Disambiguator id_system(&Network(), id_options);
    core::Disambiguator legacy_system(&Network(), legacy_options);
    for (const std::string& xml : CorpusXml()) {
      auto id_result = id_system.RunOnXml(xml);
      auto legacy_result = legacy_system.RunOnXml(xml);
      ASSERT_EQ(id_result.ok(), legacy_result.ok());
      if (!id_result.ok()) continue;
      ExpectBitIdentical(*id_result, *legacy_result);
    }
  }
}

TEST(IdFrontendBitIdentityTest, ExplainAuditJsonIsByteIdentical) {
  core::LabelSpace space(&Network());
  core::DisambiguatorOptions id_options;
  // The tree's label ids come from `space`, so the disambiguator must
  // resolve senses against the same id universe.
  id_options.label_space = &space;
  core::Disambiguator id_system(&Network(), id_options);
  core::Disambiguator legacy_system(&Network(), LegacyOptions());
  for (const std::string& xml : CorpusXml()) {
    auto id_tree = core::BuildTreeFromXml(xml, Network(), true, &space);
    auto legacy_tree = core::BuildTreeFromXml(xml, Network(), true);
    if (!id_tree.ok() || !legacy_tree.ok()) continue;
    ASSERT_TRUE(id_tree->has_label_ids());
    for (size_t id = 0; id < id_tree->size(); ++id) {
      auto id_audit =
          id_system.ExplainNode(*id_tree, static_cast<xml::NodeId>(id));
      auto legacy_audit = legacy_system.ExplainNode(
          *legacy_tree, static_cast<xml::NodeId>(id));
      ASSERT_EQ(id_audit.ok(), legacy_audit.ok());
      if (!id_audit.ok()) continue;
      EXPECT_EQ(core::NodeAuditToJson(*id_audit, Network()),
                core::NodeAuditToJson(*legacy_audit, Network()));
    }
  }
}

std::vector<std::string> RunEngine(int threads, bool use_id_frontend) {
  runtime::EngineOptions options;
  options.threads = threads;
  options.disambiguator.use_id_frontend = use_id_frontend;
  runtime::DisambiguationEngine engine(&Network(), options);
  std::vector<runtime::DocumentJob> jobs;
  size_t index = 0;
  for (const std::string& xml : CorpusXml()) {
    jobs.push_back({index++, "doc", xml});
  }
  std::vector<std::string> trees;
  for (auto& result : engine.RunBatch(std::move(jobs))) {
    trees.push_back(result.ok ? result.semantic_xml
                              : "error: " + result.error);
  }
  return trees;
}

TEST(IdFrontendBitIdentityTest, EngineOneAndEightWorkersMatchLegacy) {
  std::vector<std::string> legacy = RunEngine(1, /*use_id_frontend=*/false);
  EXPECT_EQ(RunEngine(1, /*use_id_frontend=*/true), legacy);
  EXPECT_EQ(RunEngine(8, /*use_id_frontend=*/true), legacy);
  EXPECT_EQ(RunEngine(8, /*use_id_frontend=*/false), legacy);
}

}  // namespace
}  // namespace xsdf
