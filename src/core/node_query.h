#ifndef XSDF_CORE_NODE_QUERY_H_
#define XSDF_CORE_NODE_QUERY_H_

#include <string>
#include <vector>

#include "xml/labeled_tree.h"

namespace xsdf::core {

/// Resolves a node designator against a labeled tree: either a numeric
/// NodeId, or a slash-separated path whose components match each
/// node's raw tag/token text or preprocessed label (case-
/// insensitively) along the node's root path. A leading slash anchors
/// the path at the root; otherwise it matches a root-path suffix, so
/// `director` finds every <director> node. Returns matches in
/// preorder. Shared by `xsdf explain` and the serve /explain endpoint,
/// so both address nodes identically.
std::vector<xml::NodeId> ResolveNodeQuery(const xml::LabeledTree& tree,
                                          const std::string& query);

}  // namespace xsdf::core

#endif  // XSDF_CORE_NODE_QUERY_H_
