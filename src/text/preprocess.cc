#include "text/preprocess.h"

#include "text/compound.h"
#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace xsdf::text {

std::string NormalizeToken(std::string_view token,
                           const LexiconProbe& probe) {
  std::string word(token);
  if (!probe || probe(word)) return word;
  // Lexicon-aware normalization ladder: Porter stem first, then the
  // regular plural reductions Porter over-stems ("movies" -> "movi"
  // but the lexicon lemma is "movie").
  std::string stem = PorterStem(word);
  if (stem != word && probe(stem)) return stem;
  if (word.size() > 3 && word.ends_with("ies")) {
    std::string singular = word.substr(0, word.size() - 3) + "y";
    if (probe(singular)) return singular;
  }
  if (word.size() > 2 && word.ends_with("es")) {
    std::string singular = word.substr(0, word.size() - 2);
    if (probe(singular)) return singular;
  }
  if (word.size() > 1 && word.ends_with("s")) {
    std::string singular = word.substr(0, word.size() - 1);
    if (probe(singular)) return singular;
  }
  return word;
}

ProcessedLabel PreprocessTagName(std::string_view tag,
                                 const LexiconProbe& probe) {
  ProcessedLabel out;
  std::vector<std::string> parts = SplitCompoundTag(tag);
  if (parts.empty()) {
    out.label = "";
    return out;
  }
  if (parts.size() == 1) {
    out.label = NormalizeToken(parts[0], probe);
    out.tokens = {out.label};
    return out;
  }
  // Compound tag: first try the whole collocation as one concept
  // ("first_name" as a single WordNet entry).
  std::string joined = JoinCompound(parts);
  if (probe && probe(joined)) {
    out.label = joined;
    out.tokens = {joined};
    out.compound_in_lexicon = true;
    return out;
  }
  // Otherwise: individual terms, stop-word removed and stemmed, but kept
  // within a single node label so one sense is eventually assigned to
  // the whole label (paper §3.2).
  std::vector<std::string> kept = RemoveStopWords(parts);
  if (kept.empty()) kept = parts;  // all-stop-word tags keep their parts
  for (std::string& token : kept) token = NormalizeToken(token, probe);
  out.tokens = kept;
  out.label = JoinCompound(kept);
  return out;
}

std::vector<std::string> PreprocessTextValue(std::string_view value,
                                             const LexiconProbe& probe) {
  std::vector<std::string> tokens = Tokenize(value);
  tokens = RemoveStopWords(tokens);
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (const std::string& token : tokens) {
    if (!HasLetter(token)) continue;  // drop pure numbers
    out.push_back(NormalizeToken(token, probe));
  }
  return out;
}

}  // namespace xsdf::text
