#ifndef XSDF_SIM_KERNELS_H_
#define XSDF_SIM_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/simd.h"
#include "wordnet/semantic_network.h"

namespace xsdf::sim {

/// The shared LCS-search kernel of Resnik/Lin/Wu-Palmer: positions of
/// the common ancestors of two id-sorted AncestorEntry rows, written
/// into per-thread scratch (valid until the calling thread's next
/// IntersectAncestors call). The interleaved {id, distance} rows are
/// consumed in place — the SIMD stride-2 intersect deinterleaves ids
/// in-register, so the CSR/snapshot layout stays untouched.
///
/// Each measure finishes scalar over the matched positions in match
/// order; the match set is identical at every dispatch level and the
/// selection rules (max IC, min path-sum) are order-independent, so
/// scores are bit-identical to the pre-SIMD inline merges.
struct AncestorMatches {
  const uint32_t* a = nullptr;  ///< positions into the first row
  const uint32_t* b = nullptr;  ///< positions into the second row
  size_t count = 0;
};

inline AncestorMatches IntersectAncestors(
    std::span<const wordnet::AncestorEntry> a,
    std::span<const wordnet::AncestorEntry> b, bool need_b_positions) {
  static_assert(sizeof(wordnet::AncestorEntry) == 2 * sizeof(uint32_t));
  thread_local std::vector<uint32_t> pos_a;
  thread_local std::vector<uint32_t> pos_b;
  const size_t cap = a.size() < b.size() ? a.size() : b.size();
  if (pos_a.size() < cap) pos_a.resize(cap);
  if (need_b_positions && pos_b.size() < cap) pos_b.resize(cap);
  AncestorMatches m;
  m.a = pos_a.data();
  m.b = need_b_positions ? pos_b.data() : nullptr;
  // ConceptId is a non-negative int, so reading the id words as uint32
  // preserves the sort order the CSR rows were built with.
  m.count = simd::SortedIntersectPositionsStride2(
      reinterpret_cast<const uint32_t*>(a.data()), a.size(),
      reinterpret_cast<const uint32_t*>(b.data()), b.size(), pos_a.data(),
      need_b_positions ? pos_b.data() : nullptr);
  return m;
}

}  // namespace xsdf::sim

#endif  // XSDF_SIM_KERNELS_H_
