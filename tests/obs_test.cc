// Tests for the observability layer: metrics registry (counters,
// gauges, fixed-bucket histograms with striped hot paths), snapshot
// merging, JSON export, and the Chrome-trace span recorder.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace xsdf::obs {
namespace {

// ---------------------------------------------------------------------------
// JsonWriter

TEST(JsonWriterTest, EscapesStrings) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonWriterTest, WritesNestedStructure) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("name");
  writer.Value("x\"y");
  writer.Key("values");
  writer.BeginArray();
  writer.Value(uint64_t{1});
  writer.Value(int64_t{-2});
  writer.Value(2.5);
  writer.Value(true);
  writer.Null();
  writer.EndArray();
  writer.Key("nested");
  writer.BeginObject();
  writer.EndObject();
  writer.EndObject();
  EXPECT_EQ(writer.str(),
            "{\"name\":\"x\\\"y\",\"values\":[1,-2,2.5,true,null],"
            "\"nested\":{}}");
}

TEST(JsonWriterTest, IntegralDoublesPrintWithoutFraction) {
  JsonWriter writer;
  writer.BeginArray();
  writer.Value(3.0);
  writer.Value(0.25);
  writer.EndArray();
  EXPECT_EQ(writer.str(), "[3,0.25]");
}

// ---------------------------------------------------------------------------
// Counter / Gauge

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), uint64_t{kThreads} * kPerThread);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Set(42);
  EXPECT_EQ(gauge.Value(), 42);
  gauge.Add(-50);
  EXPECT_EQ(gauge.Value(), -8);
}

// ---------------------------------------------------------------------------
// Histogram

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram histogram({10, 20, 30});
  // Bucket i holds values <= bounds[i]; the extra trailing bucket holds
  // overflow. Boundary values land in the lower bucket.
  histogram.Record(0);
  histogram.Record(10);   // bucket 0 (inclusive)
  histogram.Record(11);   // bucket 1
  histogram.Record(20);   // bucket 1 (inclusive)
  histogram.Record(30);   // bucket 2 (inclusive)
  histogram.Record(31);   // overflow
  histogram.Record(1000); // overflow
  HistogramSnapshot snap = histogram.Snapshot();
  ASSERT_EQ(snap.bounds, (std::vector<uint64_t>{10, 20, 30}));
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 2u);
  EXPECT_EQ(snap.count, 7u);
  EXPECT_EQ(snap.sum, 0u + 10 + 11 + 20 + 30 + 31 + 1000);
  EXPECT_EQ(snap.max, 1000u);
}

TEST(HistogramTest, NormalizesUnsortedDuplicatedBounds) {
  Histogram histogram({30, 10, 20, 10});
  EXPECT_EQ(histogram.bounds(), (std::vector<uint64_t>{10, 20, 30}));
}

TEST(HistogramTest, ConcurrentRecordingTotalsAreExact) {
  Histogram histogram({1, 2, 5, 10, 100});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(static_cast<uint64_t>((i + t) % 12));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, uint64_t{kThreads} * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_EQ(snap.max, 11u);
}

TEST(HistogramTest, SnapshotMergeSumsBucketsAndRejectsMismatch) {
  Histogram a({10, 20});
  Histogram b({10, 20});
  a.Record(5);
  a.Record(25);
  b.Record(15);
  b.Record(100);
  HistogramSnapshot merged = a.Snapshot();
  ASSERT_TRUE(merged.Merge(b.Snapshot()));
  EXPECT_EQ(merged.count, 4u);
  EXPECT_EQ(merged.sum, 5u + 25 + 15 + 100);
  EXPECT_EQ(merged.max, 100u);
  EXPECT_EQ(merged.counts, (std::vector<uint64_t>{1, 1, 2}));

  Histogram mismatched({1, 2, 3});
  HistogramSnapshot copy = merged;
  EXPECT_FALSE(merged.Merge(mismatched.Snapshot()));
  EXPECT_EQ(merged.counts, copy.counts);  // unchanged on failure
}

TEST(HistogramTest, ApproxPercentile) {
  Histogram histogram({10, 20, 30});
  for (int i = 0; i < 50; ++i) histogram.Record(5);
  for (int i = 0; i < 49; ++i) histogram.Record(15);
  histogram.Record(500);
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.ApproxPercentile(0.25), 10u);
  EXPECT_EQ(snap.ApproxPercentile(0.75), 20u);
  EXPECT_EQ(snap.ApproxPercentile(1.0), 500u);  // overflow reports max
  EXPECT_EQ(HistogramSnapshot{}.ApproxPercentile(0.5), 0u);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  EXPECT_EQ(counter, registry.GetCounter("c"));
  Gauge* gauge = registry.GetGauge("g");
  EXPECT_EQ(gauge, registry.GetGauge("g"));
  Histogram* histogram = registry.GetHistogram("h", {1, 2, 3});
  EXPECT_EQ(histogram, registry.GetHistogram("h"));
  // First registration wins: the original bounds survive.
  EXPECT_EQ(histogram->bounds(), (std::vector<uint64_t>{1, 2, 3}));
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndMergeable) {
  MetricsRegistry a;
  a.GetCounter("z")->Increment(3);
  a.GetCounter("a")->Increment(1);
  a.GetGauge("depth")->Set(7);
  a.GetHistogram("lat", {10})->Record(4);

  MetricsSnapshot snap = a.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a");
  EXPECT_EQ(snap.counters[1].first, "z");

  MetricsRegistry b;
  b.GetCounter("z")->Increment(10);
  b.GetCounter("only_b")->Increment(2);
  b.GetHistogram("lat", {10})->Record(40);
  ASSERT_TRUE(snap.Merge(b.Snapshot()));
  uint64_t z_total = 0;
  uint64_t only_b = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name == "z") z_total = value;
    if (name == "only_b") only_b = value;
  }
  EXPECT_EQ(z_total, 13u);
  EXPECT_EQ(only_b, 2u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 2u);

  MetricsRegistry mismatched;
  mismatched.GetHistogram("lat", {99});
  EXPECT_FALSE(snap.Merge(mismatched.Snapshot()));
}

TEST(MetricsRegistryTest, ResetZeroesCountersButKeepsGauges) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(5);
  registry.GetGauge("g")->Set(9);
  registry.GetHistogram("h")->Record(3);
  registry.Reset();
  EXPECT_EQ(registry.GetCounter("c")->Value(), 0u);
  EXPECT_EQ(registry.GetGauge("g")->Value(), 9);
  EXPECT_EQ(registry.GetHistogram("h")->Snapshot().count, 0u);
}

TEST(MetricsRegistryTest, ToJsonHasFixedShape) {
  MetricsRegistry registry;
  registry.GetCounter("docs")->Increment(2);
  registry.GetGauge("depth")->Set(-1);
  registry.GetHistogram("lat", {10, 20})->Record(15);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\":{\"docs\":2}"), std::string::npos);
  EXPECT_NE(json.find("\"depth\":-1"), std::string::npos);
  EXPECT_NE(json.find("\"bounds\":[10,20]"), std::string::npos);
  EXPECT_NE(json.find("\"counts\":[0,1,0]"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// ---------------------------------------------------------------------------
// TraceSession / Span / StageTimer

TEST(TraceTest, SpansRecordPerThreadWithStableTids) {
  TraceSession session;
  {
    Span span(&session, "main_work", "doc-a");
  }
  std::thread worker([&session] {
    session.GetThreadLog()->set_name("worker-0");
    Span outer(&session, "outer");
    Span inner(&session, "inner");
  });
  worker.join();

  std::vector<TraceSession::ExportedEvent> events = session.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(session.event_count(), 3u);
  int main_tid = -1;
  int worker_tid = -1;
  for (const auto& event : events) {
    if (event.name == "main_work") {
      main_tid = event.tid;
      EXPECT_EQ(event.arg, "doc-a");
    } else {
      worker_tid = event.tid;
      EXPECT_EQ(event.thread_name, "worker-0");
    }
  }
  EXPECT_NE(main_tid, -1);
  EXPECT_NE(worker_tid, -1);
  EXPECT_NE(main_tid, worker_tid);
}

TEST(TraceTest, NestedSpansAreContained) {
  TraceSession session;
  {
    Span outer(&session, "outer");
    Span inner(&session, "inner");
  }  // inner destructs first
  std::vector<TraceSession::ExportedEvent> events = session.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  const auto& inner = events[0];  // completion order
  const auto& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_GE(inner.ts_ns, outer.ts_ns);
  EXPECT_LE(inner.ts_ns + inner.dur_ns, outer.ts_ns + outer.dur_ns);
}

TEST(TraceTest, NullSessionSpanIsANoOp) {
  Span span(nullptr, "nothing");
  StageTimer timer(nullptr, nullptr, "nothing");
  // Nothing to assert beyond "does not crash": the null path must not
  // dereference a session or touch a clock.
}

TEST(TraceTest, ToJsonIsChromeTraceShaped) {
  TraceSession session;
  session.GetThreadLog()->set_name("main");
  {
    Span span(&session, "stage", "with \"quotes\"");
  }
  std::string json = session.ToJson();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"stage\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // thread_name
  EXPECT_NE(json.find("with \\\"quotes\\\""), std::string::npos);
  EXPECT_EQ(json.back(), '}');
}

TEST(TraceTest, StageTimerFeedsHistogramAndTrace) {
  TraceSession session;
  Histogram histogram({1000000});  // one huge bucket, in µs
  {
    StageTimer timer(&histogram, &session, "stage");
  }
  {
    StageTimer histogram_only(&histogram, nullptr, "stage");
  }
  EXPECT_EQ(histogram.Snapshot().count, 2u);
  EXPECT_EQ(session.event_count(), 1u);
}

TEST(TraceTest, FreshSessionGetsFreshThreadLogs) {
  // A thread that records into session A and then session B must not
  // keep writing into A's buffer (the thread-local cache is keyed on a
  // process-unique session id).
  TraceSession a;
  { Span span(&a, "in_a"); }
  TraceSession b;
  { Span span(&b, "in_b"); }
  ASSERT_EQ(a.event_count(), 1u);
  ASSERT_EQ(b.event_count(), 1u);
  EXPECT_EQ(a.Snapshot()[0].name, "in_a");
  EXPECT_EQ(b.Snapshot()[0].name, "in_b");
}

}  // namespace
}  // namespace xsdf::obs
