#include "core/context_vector.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "common/simd.h"

namespace xsdf::core {

double StructuralProximity(int distance, int radius) {
  return 1.0 - static_cast<double>(distance) /
                   static_cast<double>(radius + 1);
}

ContextVector::ContextVector(const Sphere& sphere,
                             bool uniform_proximity)
    : sphere_size_(sphere.size()) {
  if (sphere.members.empty()) return;
  // Freq(l, S) = sum of structural proximities of members labelled l,
  // accumulated in member order into first-occurrence-ordered entries
  // (the id pipeline accumulates in the same order — bit-identity).
  std::unordered_map<std::string, size_t> index;
  index.reserve(sphere.members.size());
  entries_.reserve(sphere.members.size());
  for (const SphereMember& member : sphere.members) {
    auto [it, inserted] = index.emplace(member.label, entries_.size());
    if (inserted) entries_.emplace_back(member.label, 0.0);
    entries_[it->second].second +=
        uniform_proximity
            ? 1.0
            : StructuralProximity(member.distance, sphere.radius);
  }
  // w(l) = Freq / Max_Freq = 2*Freq / (|S| + 1)   (Eq. 5).
  double denom = static_cast<double>(sphere.size()) + 1.0;
  for (auto& [label, f] : entries_) {
    f = std::min(2.0 * f / denom, 1.0);
  }
}

int ContextVector::FindEntry(const std::string& label) const {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].first == label) return static_cast<int>(i);
  }
  return -1;
}

double ContextVector::Weight(const std::string& label) const {
  int i = FindEntry(label);
  return i < 0 ? 0.0 : entries_[static_cast<size_t>(i)].second;
}

double ContextVector::Cosine(const ContextVector& other) const {
  double dot = 0.0;
  double norm_a = 0.0;
  double norm_b = 0.0;
  for (const auto& [label, w] : entries_) {
    norm_a += w * w;
    double v = other.Weight(label);
    dot += w * v;
  }
  for (const auto& [label, w] : other.entries_) norm_b += w * w;
  if (norm_a <= 0.0 || norm_b <= 0.0) return 0.0;
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

double ContextVector::Jaccard(const ContextVector& other) const {
  double min_sum = 0.0;
  double max_sum = 0.0;
  for (const auto& [label, w] : entries_) {
    double v = other.Weight(label);
    min_sum += std::min(w, v);
    max_sum += std::max(w, v);
  }
  for (const auto& [label, v] : other.entries_) {
    if (FindEntry(label) < 0) max_sum += v;
  }
  return max_sum <= 0.0 ? 0.0 : min_sum / max_sum;
}

IdContextVector::IdContextVector(const IdSphere& sphere,
                                 bool uniform_proximity) {
  Assign(sphere, uniform_proximity);
}

void IdContextVector::Assign(const IdSphere& sphere,
                             bool uniform_proximity) {
  ids_.clear();
  weights_.clear();
  order_.clear();
  sorted_ids_.clear();
  sphere_size_ = sphere.size();
  if (sphere.empty()) return;
  // Same accumulation as ContextVector: per-label sums in member
  // order, entries in first-occurrence order. Spheres are small (a few
  // dozen distinct labels), so first-occurrence dedup is a SIMD scan
  // over the flat id array built so far — cheaper than a hash map at
  // this size — with a hash-map fallback for pathologically wide
  // spheres.
  const size_t member_count = sphere.label_ids.size();
  ids_.reserve(member_count);
  weights_.reserve(member_count);
  constexpr size_t kLinearScanLimit = 96;
  std::unordered_map<uint32_t, uint32_t> index;
  const bool use_map = member_count > kLinearScanLimit;
  if (use_map) index.reserve(member_count);
  for (size_t m = 0; m < member_count; ++m) {
    const uint32_t label_id = sphere.label_ids[m];
    size_t entry;
    if (use_map) {
      auto [it, inserted] =
          index.emplace(label_id, static_cast<uint32_t>(ids_.size()));
      entry = it->second;
      if (inserted) {
        ids_.push_back(label_id);
        weights_.push_back(0.0);
      }
    } else {
      entry = simd::FindU32(ids_.data(), ids_.size(), label_id);
      if (entry == ids_.size()) {
        ids_.push_back(label_id);
        weights_.push_back(0.0);
      }
    }
    weights_[entry] +=
        uniform_proximity
            ? 1.0
            : StructuralProximity(sphere.distances[m], sphere.radius);
  }
  double denom = static_cast<double>(sphere.size()) + 1.0;
  for (double& f : weights_) {
    f = std::min(2.0 * f / denom, 1.0);
  }
  order_.resize(ids_.size());
  for (uint32_t i = 0; i < order_.size(); ++i) order_[i] = i;
  std::sort(order_.begin(), order_.end(),
            [this](uint32_t a, uint32_t b) { return ids_[a] < ids_[b]; });
  // Materialize the sorted ids contiguously (SoA) so Cosine/Jaccard
  // can intersect two vectors with full-lane sorted-set merges
  // instead of per-id binary searches.
  sorted_ids_.resize(order_.size());
  for (size_t k = 0; k < order_.size(); ++k) {
    sorted_ids_[k] = ids_[order_[k]];
  }
}

int IdContextVector::FindEntry(uint32_t label_id) const {
  auto it = std::lower_bound(
      order_.begin(), order_.end(), label_id,
      [this](uint32_t entry, uint32_t id) { return ids_[entry] < id; });
  if (it == order_.end() || ids_[*it] != label_id) return -1;
  return static_cast<int>(*it);
}

double IdContextVector::WeightById(uint32_t label_id) const {
  int i = FindEntry(label_id);
  return i < 0 ? 0.0 : weights_[static_cast<size_t>(i)];
}

namespace {

/// Scratch for the vector-level Cosine/Jaccard path: intersection
/// position pairs plus a dense per-entry match buffer. Thread-local and
/// grown-never-shrunk — the scoring hot loop compares thousands of
/// vector pairs per document.
struct MatchScratch {
  std::vector<uint32_t> pos_a;
  std::vector<uint32_t> pos_b;
  std::vector<double> matched;        ///< other's weight per this-entry
  std::vector<uint8_t> other_hit;     ///< 1 per matched other-entry
};

MatchScratch& LocalMatchScratch() {
  thread_local MatchScratch scratch;
  return scratch;
}

}  // namespace

double IdContextVector::Cosine(const IdContextVector& other) const {
  const size_t n = ids_.size();
  if (simd::ActiveLevel() == simd::Level::kScalar) {
    // Scalar reference path: per-id binary search, exactly the legacy
    // loop. The vector path below must reproduce it bit for bit (the
    // equivalence tests compare the two directly).
    double dot = 0.0;
    double norm_a = 0.0;
    double norm_b = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double w = weights_[i];
      norm_a += w * w;
      double v = other.WeightById(ids_[i]);
      dot += w * v;
    }
    for (double w : other.weights_) norm_b += w * w;
    if (norm_a <= 0.0 || norm_b <= 0.0) return 0.0;
    return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
  }
  // Vector path: one sorted-set merge finds every matching dimension,
  // then the weights are gathered into a zero-filled dense buffer so
  // the FP accumulation below runs over the same values in the same
  // first-occurrence order as the scalar path — WeightById() returns
  // +0.0 for absent ids and the gather leaves exactly those slots
  // +0.0, so every partial sum is bit-identical.
  const size_t m = other.ids_.size();
  MatchScratch& scratch = LocalMatchScratch();
  const size_t cap = n < m ? n : m;
  if (scratch.pos_a.size() < cap) {
    scratch.pos_a.resize(cap);
    scratch.pos_b.resize(cap);
  }
  const size_t match_count = simd::SortedIntersectPositionsU32(
      sorted_ids_.data(), n, other.sorted_ids_.data(), m,
      scratch.pos_a.data(), scratch.pos_b.data());
  if (scratch.matched.size() < n) scratch.matched.resize(n);
  std::fill_n(scratch.matched.data(), n, 0.0);
  for (size_t t = 0; t < match_count; ++t) {
    scratch.matched[order_[scratch.pos_a[t]]] =
        other.weights_[other.order_[scratch.pos_b[t]]];
  }
  double dot = 0.0;
  double norm_a = 0.0;
  double norm_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double w = weights_[i];
    norm_a += w * w;
    dot += w * scratch.matched[i];
  }
  for (double w : other.weights_) norm_b += w * w;
  if (norm_a <= 0.0 || norm_b <= 0.0) return 0.0;
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

double IdContextVector::Jaccard(const IdContextVector& other) const {
  const size_t n = ids_.size();
  const size_t m = other.ids_.size();
  if (simd::ActiveLevel() == simd::Level::kScalar) {
    // Scalar reference path (see Cosine).
    double min_sum = 0.0;
    double max_sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double w = weights_[i];
      double v = other.WeightById(ids_[i]);
      min_sum += std::min(w, v);
      max_sum += std::max(w, v);
    }
    for (size_t i = 0; i < m; ++i) {
      if (FindEntry(other.ids_[i]) < 0) max_sum += other.weights_[i];
    }
    return max_sum <= 0.0 ? 0.0 : min_sum / max_sum;
  }
  // Vector path: one merge replaces both the per-id binary searches of
  // the min/max loop and the reverse FindEntry() probes of the
  // unmatched-other loop. Weights are strictly positive, so
  // min(w, +0.0) == +0.0 and max(w, +0.0) == w exactly as with
  // WeightById()'s absent result — every partial sum is bit-identical
  // to the scalar path.
  MatchScratch& scratch = LocalMatchScratch();
  const size_t cap = n < m ? n : m;
  if (scratch.pos_a.size() < cap) {
    scratch.pos_a.resize(cap);
    scratch.pos_b.resize(cap);
  }
  const size_t match_count = simd::SortedIntersectPositionsU32(
      sorted_ids_.data(), n, other.sorted_ids_.data(), m,
      scratch.pos_a.data(), scratch.pos_b.data());
  if (scratch.matched.size() < n) scratch.matched.resize(n);
  std::fill_n(scratch.matched.data(), n, 0.0);
  if (scratch.other_hit.size() < m) scratch.other_hit.resize(m);
  std::fill_n(scratch.other_hit.data(), m, static_cast<uint8_t>(0));
  for (size_t t = 0; t < match_count; ++t) {
    const uint32_t other_entry = other.order_[scratch.pos_b[t]];
    scratch.matched[order_[scratch.pos_a[t]]] =
        other.weights_[other_entry];
    scratch.other_hit[other_entry] = 1;
  }
  double min_sum = 0.0;
  double max_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double w = weights_[i];
    double v = scratch.matched[i];
    min_sum += std::min(w, v);
    max_sum += std::max(w, v);
  }
  for (size_t i = 0; i < m; ++i) {
    if (scratch.other_hit[i] == 0) max_sum += other.weights_[i];
  }
  return max_sum <= 0.0 ? 0.0 : min_sum / max_sum;
}

Sphere BuildXmlSphere(const xml::LabeledTree& tree, xml::NodeId center,
                      int radius, bool exclude_tokens) {
  Sphere sphere;
  sphere.radius = radius;
  std::vector<std::vector<xml::NodeId>> rings = tree.Rings(center, radius);
  size_t total = 0;
  for (const auto& ring : rings) total += ring.size();
  sphere.members.reserve(total);
  for (int d = 0; d < static_cast<int>(rings.size()); ++d) {
    for (xml::NodeId id : rings[static_cast<size_t>(d)]) {
      if (exclude_tokens && id != center &&
          tree.node(id).kind == xml::TreeNodeKind::kToken) {
        continue;
      }
      sphere.members.push_back({tree.node(id).label, d});
    }
  }
  return sphere;
}

IdSphere BuildXmlIdSphere(const xml::LabeledTree& tree,
                          std::span<const uint32_t> label_ids,
                          xml::NodeId center, int radius,
                          bool exclude_tokens) {
  IdSphere sphere;
  BuildXmlIdSphere(tree, label_ids, center, radius, exclude_tokens,
                   &sphere);
  return sphere;
}

void BuildXmlIdSphere(const xml::LabeledTree& tree,
                      std::span<const uint32_t> label_ids,
                      xml::NodeId center, int radius, bool exclude_tokens,
                      IdSphere* out) {
  IdSphere& sphere = *out;
  sphere.clear();
  sphere.radius = radius;
  // Inline BFS over the undirected tree adjacency producing exactly
  // the ring-by-ring, sorted-within-ring member order of
  // tree.Rings(center, radius), but with reusable scratch instead of
  // Rings()'s per-call ring vectors and visited array: an
  // epoch-stamped mark table and two flat frontier buffers, reused
  // across every sphere built on this thread.
  thread_local std::vector<uint32_t> mark;
  thread_local uint32_t epoch = 0;
  thread_local std::vector<xml::NodeId> frontier;
  thread_local std::vector<xml::NodeId> next;
  if (mark.size() < tree.size()) mark.resize(tree.size(), 0);
  if (++epoch == 0) {  // epoch wrapped: invalidate all stale marks
    std::fill(mark.begin(), mark.end(), 0);
    epoch = 1;
  }

  sphere.push_back(label_ids[static_cast<size_t>(center)], 0);
  mark[static_cast<size_t>(center)] = epoch;
  frontier.clear();
  frontier.push_back(center);
  for (int d = 1; d <= radius && !frontier.empty(); ++d) {
    next.clear();
    for (xml::NodeId id : frontier) {
      const xml::TreeNode& n = tree.node(id);
      auto visit = [&](xml::NodeId neighbor) {
        if (neighbor != xml::kInvalidNode &&
            mark[static_cast<size_t>(neighbor)] != epoch) {
          mark[static_cast<size_t>(neighbor)] = epoch;
          next.push_back(neighbor);
        }
      };
      visit(n.parent);
      for (xml::NodeId child : n.children) visit(child);
    }
    std::sort(next.begin(), next.end());
    for (xml::NodeId id : next) {
      if (exclude_tokens &&
          tree.node(id).kind == xml::TreeNodeKind::kToken) {
        continue;
      }
      sphere.push_back(label_ids[static_cast<size_t>(id)], d);
    }
    std::swap(frontier, next);
  }
}

Sphere BuildConceptSphere(const wordnet::SemanticNetwork& network,
                          wordnet::ConceptId center, int radius) {
  Sphere sphere;
  sphere.radius = radius;
  std::vector<std::vector<wordnet::ConceptId>> rings =
      network.Rings(center, radius);
  size_t total = 0;
  for (const auto& ring : rings) total += ring.size();
  sphere.members.reserve(total);
  for (int d = 0; d < static_cast<int>(rings.size()); ++d) {
    for (wordnet::ConceptId id : rings[static_cast<size_t>(d)]) {
      sphere.members.push_back({network.GetConcept(id).label(), d});
    }
  }
  return sphere;
}

IdSphere BuildConceptIdSphere(const wordnet::SemanticNetwork& network,
                              wordnet::ConceptId center, int radius) {
  IdSphere sphere;
  sphere.radius = radius;
  std::vector<std::vector<wordnet::ConceptId>> rings =
      network.Rings(center, radius);
  size_t total = 0;
  for (const auto& ring : rings) total += ring.size();
  sphere.reserve(total);
  for (int d = 0; d < static_cast<int>(rings.size()); ++d) {
    for (wordnet::ConceptId id : rings[static_cast<size_t>(d)]) {
      sphere.push_back(network.LabelTokenId(id), d);
    }
  }
  return sphere;
}

Sphere BuildCompoundConceptSphere(const wordnet::SemanticNetwork& network,
                                  wordnet::ConceptId p,
                                  wordnet::ConceptId q, int radius) {
  // Union keyed by concept id, keeping the smaller distance.
  std::map<wordnet::ConceptId, int> distances;
  for (wordnet::ConceptId center : {p, q}) {
    std::vector<std::vector<wordnet::ConceptId>> rings =
        network.Rings(center, radius);
    for (int d = 0; d < static_cast<int>(rings.size()); ++d) {
      for (wordnet::ConceptId id : rings[static_cast<size_t>(d)]) {
        auto [it, inserted] = distances.emplace(id, d);
        if (!inserted && d < it->second) it->second = d;
      }
    }
  }
  Sphere sphere;
  sphere.radius = radius;
  for (const auto& [id, d] : distances) {
    sphere.members.push_back({network.GetConcept(id).label(), d});
  }
  return sphere;
}

IdSphere BuildCompoundConceptIdSphere(
    const wordnet::SemanticNetwork& network, wordnet::ConceptId p,
    wordnet::ConceptId q, int radius) {
  std::map<wordnet::ConceptId, int> distances;
  for (wordnet::ConceptId center : {p, q}) {
    std::vector<std::vector<wordnet::ConceptId>> rings =
        network.Rings(center, radius);
    for (int d = 0; d < static_cast<int>(rings.size()); ++d) {
      for (wordnet::ConceptId id : rings[static_cast<size_t>(d)]) {
        auto [it, inserted] = distances.emplace(id, d);
        if (!inserted && d < it->second) it->second = d;
      }
    }
  }
  IdSphere sphere;
  sphere.radius = radius;
  for (const auto& [id, d] : distances) {
    sphere.push_back(network.LabelTokenId(id), d);
  }
  return sphere;
}

}  // namespace xsdf::core
