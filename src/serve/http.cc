#include "serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/strings.h"

namespace xsdf::serve {

namespace {

/// Caps on the request head (request line + headers): a client that
/// streams an unbounded header section is cut off, not buffered.
constexpr size_t kMaxHeadBytes = 64 * 1024;
constexpr size_t kMaxHeaderCount = 100;

std::string ToLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

Status WriteAll(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string HttpRequest::QueryParam(const std::string& key) const {
  std::string_view rest = query;
  while (!rest.empty()) {
    size_t amp = rest.find('&');
    std::string_view pair = rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view()
                                         : rest.substr(amp + 1);
    size_t eq = pair.find('=');
    if (pair.substr(0, eq) != key) continue;
    std::string_view raw =
        eq == std::string_view::npos ? std::string_view() : pair.substr(eq + 1);
    std::string value;
    value.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] == '+') {
        value.push_back(' ');
      } else if (raw[i] == '%' && i + 2 < raw.size() &&
                 HexValue(raw[i + 1]) >= 0 && HexValue(raw[i + 2]) >= 0) {
        value.push_back(static_cast<char>(HexValue(raw[i + 1]) * 16 +
                                          HexValue(raw[i + 2])));
        i += 2;
      } else {
        value.push_back(raw[i]);
      }
    }
    return value;
  }
  return std::string();
}

const char* HttpReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

Status ReadHttpRequest(int fd, HttpRequest* out, size_t max_body_bytes) {
  std::string head;
  size_t head_end = std::string::npos;
  char buffer[4096];
  while (head_end == std::string::npos) {
    if (head.size() > kMaxHeadBytes) {
      return Status::Corruption("request head too large");
    }
    ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (head.empty()) return Status::NotFound("connection closed");
      return Status::Corruption("connection closed mid-request");
    }
    size_t scan_from = head.size() < 3 ? 0 : head.size() - 3;
    head.append(buffer, static_cast<size_t>(n));
    head_end = head.find("\r\n\r\n", scan_from);
  }
  std::string body = head.substr(head_end + 4);
  head.resize(head_end);

  // Request line.
  size_t line_end = head.find("\r\n");
  std::string_view request_line =
      std::string_view(head).substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos
                   ? std::string_view::npos
                   : request_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) {
    return Status::Corruption("malformed request line");
  }
  out->method = std::string(request_line.substr(0, sp1));
  out->target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  std::string_view version = request_line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Status::Corruption("unsupported HTTP version");
  }
  if (out->method.empty() || out->target.empty() ||
      out->target[0] != '/') {
    return Status::Corruption("malformed request target");
  }
  size_t question = out->target.find('?');
  out->path = out->target.substr(0, question);
  out->query = question == std::string::npos
                   ? std::string()
                   : out->target.substr(question + 1);
  out->keep_alive = version == "HTTP/1.1";

  // Headers.
  out->headers.clear();
  size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t end = head.find("\r\n", pos);
    if (end == std::string::npos) end = head.size();
    std::string_view line = std::string_view(head).substr(pos, end - pos);
    pos = end + 2;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::Corruption("malformed header line");
    }
    if (out->headers.size() >= kMaxHeaderCount) {
      return Status::Corruption("too many headers");
    }
    out->headers[ToLower(std::string(line.substr(0, colon)))] =
        std::string(Trim(line.substr(colon + 1)));
  }
  std::string connection = ToLower(out->Header("connection", ""));
  if (connection == "close") out->keep_alive = false;
  if (connection == "keep-alive") out->keep_alive = true;

  // Body: Content-Length only (chunked requests are refused rather
  // than half-implemented).
  if (out->headers.count("transfer-encoding") != 0) {
    return Status::Corruption("transfer-encoding is not supported");
  }
  size_t content_length = 0;
  auto it = out->headers.find("content-length");
  if (it != out->headers.end()) {
    errno = 0;
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(it->second.c_str(), &end, 10);
    if (errno != 0 || end == it->second.c_str() || *end != '\0') {
      return Status::Corruption("malformed content-length");
    }
    content_length = static_cast<size_t>(parsed);
  }
  if (content_length > max_body_bytes) {
    return Status::OutOfRange("request body too large");
  }
  if (body.size() > content_length) {
    // Pipelined extra bytes would desynchronize the keep-alive loop.
    return Status::Corruption("unexpected bytes after request body");
  }
  while (body.size() < content_length) {
    size_t want = std::min(sizeof(buffer), content_length - body.size());
    ssize_t n = ::recv(fd, buffer, want, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) return Status::Corruption("connection closed mid-body");
    body.append(buffer, static_cast<size_t>(n));
  }
  out->body = std::move(body);
  return Status::Ok();
}

Status WriteHttpResponse(int fd, const HttpResponse& response,
                         bool keep_alive) {
  std::string head = StrFormat("HTTP/1.1 %d %s\r\n", response.status,
                               HttpReason(response.status));
  head += StrFormat("Content-Type: %s\r\n", response.content_type.c_str());
  head += StrFormat("Content-Length: %zu\r\n", response.body.size());
  head += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : response.headers) {
    head += StrFormat("%s: %s\r\n", name.c_str(), value.c_str());
  }
  head += "\r\n";
  XSDF_RETURN_IF_ERROR(WriteAll(fd, head.data(), head.size()));
  return WriteAll(fd, response.body.data(), response.body.size());
}

Result<ClientResponse> HttpCall(
    const std::string& host, int port, const std::string& method,
    const std::string& target,
    const std::vector<std::pair<std::string, std::string>>& headers,
    const std::string& body, int timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  struct timeval timeout{};
  timeout.tv_sec = timeout_ms / 1000;
  timeout.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IoError(StrFormat("connect %s:%d: %s", host.c_str(),
                                     port, std::strerror(err)));
  }

  std::string request =
      StrFormat("%s %s HTTP/1.1\r\nHost: %s:%d\r\nContent-Length: %zu\r\n"
                "Connection: close\r\n",
                method.c_str(), target.c_str(), host.c_str(), port,
                body.size());
  for (const auto& [name, value] : headers) {
    request += StrFormat("%s: %s\r\n", name.c_str(), value.c_str());
  }
  request += "\r\n";
  request += body;
  Status sent = WriteAll(fd, request.data(), request.size());
  if (!sent.ok()) {
    ::close(fd);
    return sent;
  }

  // Read to EOF (we sent Connection: close), then parse.
  std::string raw;
  char buffer[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      return Status::IoError(std::string("recv: ") + std::strerror(err));
    }
    if (n == 0) break;
    raw.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Status::Corruption("incomplete HTTP response");
  }
  ClientResponse response;
  std::string_view head = std::string_view(raw).substr(0, head_end);
  size_t line_end = head.find("\r\n");
  std::string_view status_line = head.substr(0, line_end);
  if (status_line.size() < 12 || status_line.substr(0, 5) != "HTTP/") {
    return Status::Corruption("malformed status line");
  }
  response.status = std::atoi(std::string(status_line.substr(9, 3)).c_str());
  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t end = head.find("\r\n", pos);
    if (end == std::string_view::npos) end = head.size();
    std::string_view line = head.substr(pos, end - pos);
    pos = end + 2;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    response.headers[ToLower(std::string(line.substr(0, colon)))] =
        std::string(Trim(line.substr(colon + 1)));
  }
  response.body = raw.substr(head_end + 4);
  auto it = response.headers.find("content-length");
  if (it != response.headers.end()) {
    size_t expected = static_cast<size_t>(std::atoll(it->second.c_str()));
    if (response.body.size() != expected) {
      return Status::Corruption("response body length mismatch");
    }
  }
  return response;
}

}  // namespace xsdf::serve
