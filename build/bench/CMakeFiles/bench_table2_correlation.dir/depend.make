# Empty dependencies file for bench_table2_correlation.
# This may be replaced when dependencies are built.
