#ifndef XSDF_EVAL_RATERS_H_
#define XSDF_EVAL_RATERS_H_

#include <vector>

#include "common/rng.h"
#include "wordnet/semantic_network.h"
#include "xml/labeled_tree.h"

namespace xsdf::eval {

/// Simulated panel of human ambiguity raters (stand-in for the paper's
/// five testers who rated 1000 nodes on a 0-4 scale, §4.2).
///
/// The model reproduces the paper's central observation: humans rate a
/// node by how *contextually transparent* its meaning is, not by how
/// many senses a dictionary lists. A rater's expected rating is
///
///   4 * polysemy^0.7 * (1 - transparency)
///
/// where transparency grows with node depth, the diversity of the
/// surrounding labels, and — crucially — with `context_clarity`, the
/// domain specificity of the document family. In specific domains
/// (paper Group 4: personnel, catalogs) transparency is additionally
/// boosted for high-polysemy labels: exactly the everyday words with
/// many dictionary senses ("state" under "address") are the ones whose
/// contextual meaning is obvious, which is the mechanism behind the
/// negative human/system correlations of paper Table 2.
struct RaterPanelOptions {
  int raters = 5;            ///< panel size
  double noise_sigma = 1.2;  ///< per-rater Gaussian noise (rating units)
  /// Domain specificity in [0, 1]: ~0 for generic deep corpora
  /// (Group 1) up to ~0.7 for flat domain-specific ones (Group 4).
  double context_clarity = 0.0;
};

/// Mean panel rating (in [0, 4]) for each node id in `nodes`.
/// Deterministic in `seed`.
std::vector<double> SimulateHumanRatings(
    const xml::LabeledTree& tree, const std::vector<xml::NodeId>& nodes,
    const wordnet::SemanticNetwork& network,
    const RaterPanelOptions& options, uint64_t seed);

/// Samples `count` distinct sense-bearing nodes from the tree for
/// rating (the paper samples 12-13 nodes per document).
std::vector<xml::NodeId> SampleRatableNodes(
    const xml::LabeledTree& tree, const wordnet::SemanticNetwork& network,
    int count, uint64_t seed);

}  // namespace xsdf::eval

#endif  // XSDF_EVAL_RATERS_H_
