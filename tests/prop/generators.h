#ifndef XSDF_TESTS_PROP_GENERATORS_H_
#define XSDF_TESTS_PROP_GENERATORS_H_

#include <string>
#include <string_view>

#include "common/rng.h"
#include "wordnet/semantic_network.h"
#include "wordnet/wndb.h"
#include "xml/dom.h"

/// Deterministic input generators shared by the property tests, the
/// fuzz seed-corpus builder (tools/make_fuzz_corpus), and the
/// structured WNDB mutator in fuzz/. Everything draws from an
/// explicitly seeded common::Rng — no std::random_device, no global
/// state — so a failing seed reproduces bit-identically anywhere.
namespace xsdf::propgen {

// ====================== XML document generation ======================

struct XmlGenOptions {
  /// Maximum element nesting depth of generated documents.
  int max_depth = 5;
  /// Maximum child constructs per element.
  int max_children = 4;
  /// Maximum attributes per element.
  int max_attributes = 3;
  /// Allow CDATA sections, comments, processing instructions, DOCTYPE.
  bool allow_cdata = true;
  bool allow_misc = true;
  /// Mix entity and character references into text and attributes.
  bool allow_entities = true;
};

/// Generates a random well-formed XML document as text. The result is
/// always accepted by xml::Parse.
std::string GenerateXmlDocument(Rng& rng, const XmlGenOptions& options = {});

/// Deep structural equality of two parsed documents: same element
/// names, attributes (name, value, order), text/CDATA content, and
/// child structure. On mismatch returns false and, when `diff` is
/// non-null, describes the first difference.
bool StructurallyEqual(const xml::Document& a, const xml::Document& b,
                       std::string* diff = nullptr);

// ====================== Mini-lexicon generation ======================

struct LexiconGenOptions {
  int min_concepts = 4;
  int max_concepts = 32;
  /// Probability that a concept reuses an existing lemma (polysemy).
  double polysemy_rate = 0.3;
  /// Probability that a concept gets a corpus frequency.
  double tagged_rate = 0.6;
};

/// Generates a random valid semantic network. Concepts are created
/// grouped by part of speech (all nouns first, then verbs, adjectives,
/// adverbs) so that WriteWndb -> ParseWndb -> WriteWndb is
/// byte-identical: the WNDB data files themselves store synsets grouped
/// per pos file, so a pos-grouped network survives the id relabeling of
/// a parse round trip with its lex_id assignment intact.
wordnet::SemanticNetwork GenerateMiniLexicon(
    Rng& rng, const LexiconGenOptions& options = {});

// ====================== WNDB fuzz container ==========================
//
// libFuzzer mutates one flat byte buffer, but ParseWndb consumes a map
// of named files. The container is the bridge: files are concatenated
// with one-line "%%file <name>" headers. Seeds are packed from
// WriteWndb output; the harness unpacks before parsing.

std::string PackWndbContainer(const wordnet::WndbFiles& files);
wordnet::WndbFiles UnpackWndbContainer(std::string_view blob);

// ====================== Mutators =====================================

/// Applies `edits` random byte-level edits (overwrite, insert, erase,
/// chunk duplication) to `input`.
std::string MutateBytes(Rng& rng, std::string_view input, int edits);

/// Structure-aware WNDB mutator: unpacks the container, picks a record
/// line of one file and rewrites a single whitespace-separated field
/// (numeric nudge, pointer-symbol swap, field duplication/drop,
/// truncation), then repacks. Mutating fields of valid records instead
/// of raw bytes keeps the header/offset scaffolding intact, so
/// coverage reaches the per-field validation paths rather than dying
/// at the first offset check. Falls back to MutateBytes when the blob
/// has no recognizable record line.
std::string MutateWndbContainer(Rng& rng, std::string_view blob);

}  // namespace xsdf::propgen

#endif  // XSDF_TESTS_PROP_GENERATORS_H_
