#include "core/baselines.h"

#include <algorithm>
#include <cmath>

#include "core/tree_builder.h"

namespace xsdf::core {

namespace {

/// First sense-bearing token of a label (the VSD convention of
/// processing compound tokens separately) or the label itself.
std::vector<wordnet::ConceptId> PrimaryTokenSenses(
    const wordnet::SemanticNetwork& network, const std::string& label) {
  for (const std::string& token : LabelSenseTokens(network, label)) {
    const std::vector<wordnet::ConceptId>& senses = network.Senses(token);
    if (!senses.empty()) return senses;
  }
  return {};
}

SenseAssignment AssignBest(
    const wordnet::SemanticNetwork& network, xml::NodeId id,
    const std::vector<wordnet::ConceptId>& candidates,
    const std::function<double(wordnet::ConceptId)>& score_fn) {
  SenseAssignment assignment;
  assignment.node = id;
  assignment.candidate_count = static_cast<int>(candidates.size());
  if (candidates.size() == 1) {
    assignment.sense = {candidates[0], wordnet::kInvalidConcept};
    assignment.score = 1.0;
    return assignment;
  }
  // Context scores normalized to the top, plus the same
  // most-frequent-sense tie-breaker XSDF uses (all compared systems
  // consume the same weighted network SN-bar).
  constexpr double kFrequencyPrior = 0.15;
  std::vector<double> scores(candidates.size(), 0.0);
  double max_score = 0.0;
  double max_freq = 0.0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    scores[i] = score_fn(candidates[i]);
    max_score = std::max(max_score, scores[i]);
    max_freq =
        std::max(max_freq, network.GetConcept(candidates[i]).frequency);
  }
  size_t best = 0;
  double best_score = -1.0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    double s = max_score > 0.0 ? scores[i] / max_score : 0.0;
    if (max_freq > 0.0) {
      s += kFrequencyPrior *
           network.GetConcept(candidates[i]).frequency / max_freq;
    }
    if (s > best_score) {
      best_score = s;
      best = i;
    }
  }
  assignment.sense = {candidates[best], wordnet::kInvalidConcept};
  assignment.score = best_score;
  return assignment;
}

}  // namespace

// ---------------------------------------------------------------- RPD --

RpdBaseline::RpdBaseline(const wordnet::SemanticNetwork* network)
    : network_(network),
      // The cited RPD configuration combines gloss overlap [6] with the
      // Wu-Palmer edge measure [59]; no information-content component.
      measure_(sim::SimilarityWeights{0.5, 0.0, 0.5}) {}

double RpdBaseline::Score(const xml::LabeledTree& tree, xml::NodeId id,
                          wordnet::ConceptId candidate) const {
  // Context = the other labels on root-to-leaf paths through the node:
  // its ancestors plus its structural (element/attribute) descendants,
  // per the per-path disambiguation of [50].
  std::vector<xml::NodeId> context = tree.RootPath(id);
  for (xml::NodeId descendant : tree.Subtree(id)) {
    if (tree.node(descendant).kind != xml::TreeNodeKind::kToken) {
      context.push_back(descendant);
    }
  }
  double total = 0.0;
  for (xml::NodeId path_node : context) {
    if (path_node == id) continue;
    const std::string& label = tree.node(path_node).label;
    double best = 0.0;
    for (const std::string& token : LabelSenseTokens(*network_, label)) {
      for (wordnet::ConceptId other : network_->Senses(token)) {
        best = std::max(best,
                        measure_.Similarity(*network_, candidate, other));
      }
    }
    total += best;
  }
  return total;
}

Result<SemanticTree> RpdBaseline::RunOnTree(xml::LabeledTree tree) const {
  SemanticTree result;
  for (const xml::TreeNode& node : tree.nodes()) {
    // RPD generates structure features: element/attribute labels only;
    // content (token) nodes are not disambiguated (paper Table 4).
    if (node.kind == xml::TreeNodeKind::kToken) continue;
    std::vector<wordnet::ConceptId> candidates =
        PrimaryTokenSenses(*network_, node.label);
    if (candidates.empty()) continue;
    result.assignments.emplace(
        node.id,
        AssignBest(*network_, node.id, candidates,
                   [&](wordnet::ConceptId c) {
                     return Score(tree, node.id, c);
                   }));
  }
  result.tree = std::move(tree);
  return result;
}

// ---------------------------------------------------------------- VSD --

VsdBaseline::VsdBaseline(const wordnet::SemanticNetwork* network,
                         Options options)
    : network_(network), options_(options) {}

double VsdBaseline::DecayWeight(int distance) const {
  double d = static_cast<double>(distance);
  return std::exp(-(d * d) / (2.0 * options_.sigma * options_.sigma));
}

double VsdBaseline::LeacockChodorow(wordnet::ConceptId a,
                                    wordnet::ConceptId b) const {
  if (a == b) return 1.0;
  int len = network_->HypernymPathLength(a, b);
  if (len < 0) return 0.0;
  int max_depth = std::max(network_->MaxDepth(), 1);
  // lch = -log((len+1) / (2 * max_depth)); normalized by the maximum
  // attainable value -log(1 / (2 * max_depth)).
  double raw = -std::log(static_cast<double>(len + 1) /
                         (2.0 * static_cast<double>(max_depth)));
  double max_raw = -std::log(1.0 / (2.0 * static_cast<double>(max_depth)));
  if (max_raw <= 0.0) return 0.0;
  double sim = raw / max_raw;
  return std::clamp(sim, 0.0, 1.0);
}

double VsdBaseline::Score(const xml::LabeledTree& tree, xml::NodeId id,
                          wordnet::ConceptId candidate) const {
  std::vector<std::vector<xml::NodeId>> rings =
      tree.Rings(id, options_.max_distance);
  double total = 0.0;
  for (int d = 1; d < static_cast<int>(rings.size()); ++d) {
    double weight = DecayWeight(d);
    if (weight < options_.threshold) break;  // edge no longer crossable
    for (xml::NodeId context : rings[static_cast<size_t>(d)]) {
      const std::string& label = tree.node(context).label;
      double best = 0.0;
      for (const std::string& token : LabelSenseTokens(*network_, label)) {
        for (wordnet::ConceptId other : network_->Senses(token)) {
          best = std::max(best, LeacockChodorow(candidate, other));
        }
      }
      total += weight * best;
    }
  }
  return total;
}

Result<SemanticTree> VsdBaseline::RunOnTree(xml::LabeledTree tree) const {
  SemanticTree result;
  for (const xml::TreeNode& node : tree.nodes()) {
    // VSD disambiguates structured labels, not text content
    // (paper Table 4: structure-and-content is XSDF-only).
    if (node.kind == xml::TreeNodeKind::kToken) continue;
    std::vector<wordnet::ConceptId> candidates =
        PrimaryTokenSenses(*network_, node.label);
    if (candidates.empty()) continue;
    result.assignments.emplace(
        node.id,
        AssignBest(*network_, node.id, candidates,
                   [&](wordnet::ConceptId c) {
                     return Score(tree, node.id, c);
                   }));
  }
  result.tree = std::move(tree);
  return result;
}

}  // namespace xsdf::core
