# Empty dependencies file for path_query_test.
# This may be replaced when dependencies are built.
