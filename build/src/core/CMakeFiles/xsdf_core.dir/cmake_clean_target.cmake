file(REMOVE_RECURSE
  "libxsdf_core.a"
)
