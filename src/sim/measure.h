#ifndef XSDF_SIM_MEASURE_H_
#define XSDF_SIM_MEASURE_H_

#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "wordnet/semantic_network.h"

namespace xsdf::sim {

/// Interface of a concept-to-concept semantic similarity measure over a
/// (weighted) semantic network. Implementations must return values in
/// [0, 1], with Similarity(c, c) == 1 for any concept related to the
/// taxonomy, and be symmetric.
class SimilarityMeasure {
 public:
  virtual ~SimilarityMeasure() = default;

  /// Similarity of concepts `a` and `b` in [0, 1].
  virtual double Similarity(const wordnet::SemanticNetwork& network,
                            wordnet::ConceptId a,
                            wordnet::ConceptId b) const = 0;

  /// Stable identifier ("wu-palmer", "lin", "gloss-overlap", ...).
  virtual std::string name() const = 0;
};

/// Registry of similarity measures, allowing users to plug in their own
/// measures and to select/compose measures by name (the paper's
/// requirement that the set of measures be extensible, §3.5.1).
///
/// Thread-safe: Register takes an exclusive lock, Create/Names take a
/// shared lock, so plugins may register concurrently with serve-side
/// measure construction (hot lexicon swap builds per-worker measures
/// while Register may run). Factories themselves must be callable
/// concurrently (the built-ins are stateless lambdas).
class MeasureRegistry {
 public:
  using Factory = std::function<std::unique_ptr<SimilarityMeasure>()>;

  /// The process-wide registry, pre-populated with the built-in
  /// measures (wu-palmer, lin, gloss-overlap, resnik,
  /// conceptual-density).
  static MeasureRegistry& Global();

  /// Registers `factory` under `name`; overwrite semantics.
  void Register(const std::string& name, Factory factory);

  /// Instantiates the measure registered under `name`.
  Result<std::unique_ptr<SimilarityMeasure>> Create(
      const std::string& name) const;

  /// Names of all registered measures, sorted.
  std::vector<std::string> Names() const;

 private:
  mutable std::shared_mutex mu_;
  std::vector<std::pair<std::string, Factory>> factories_;
};

}  // namespace xsdf::sim

#endif  // XSDF_SIM_MEASURE_H_
