#include "sim/wu_palmer.h"

#include <limits>

#include "sim/kernels.h"

namespace xsdf::sim {

double WuPalmerMeasure::LegacySimilarity(
    const wordnet::SemanticNetwork& network, wordnet::ConceptId a,
    wordnet::ConceptId b) {
  if (a == b) return 1.0;
  wordnet::ConceptId lcs = network.LeastCommonSubsumer(a, b);
  if (lcs == wordnet::kInvalidConcept) return 0.0;
  auto da = network.AncestorDistances(a);
  auto db = network.AncestorDistances(b);
  int len_a = da.at(lcs);
  int len_b = db.at(lcs);
  int depth_lcs = network.Depth(lcs);
  double denominator =
      static_cast<double>(len_a + len_b + 2 * depth_lcs);
  if (denominator <= 0.0) return 0.0;  // both are roots and disjoint
  return (2.0 * depth_lcs) / denominator;
}

double WuPalmerMeasure::Similarity(const wordnet::SemanticNetwork& network,
                                   wordnet::ConceptId a,
                                   wordnet::ConceptId b) const {
  if (a == b) return 1.0;
  if (!network.finalized()) return LegacySimilarity(network, a, b);
  // LCS = common ancestor minimizing len_a + len_b (ties toward depth),
  // found by the SIMD intersect of the two id-sorted ancestor arrays.
  // The score only depends on (best_sum, best_depth); the (sum, depth)
  // selection rule is order-independent over the matched set and the
  // intersect finds the same matches at every dispatch level — so this
  // matches the legacy path bit for bit.
  std::span<const wordnet::AncestorEntry> aa = network.Ancestors(a);
  std::span<const wordnet::AncestorEntry> ab = network.Ancestors(b);
  int best_sum = std::numeric_limits<int>::max();
  int best_depth = -1;
  AncestorMatches lcs = IntersectAncestors(aa, ab, /*need_b_positions=*/true);
  for (size_t k = 0; k < lcs.count; ++k) {
    const wordnet::AncestorEntry& ea = aa[lcs.a[k]];
    const wordnet::AncestorEntry& eb = ab[lcs.b[k]];
    int sum = static_cast<int>(ea.distance + eb.distance);
    int depth = network.Depth(ea.id);
    if (sum < best_sum || (sum == best_sum && depth > best_depth)) {
      best_sum = sum;
      best_depth = depth;
    }
  }
  if (best_depth < 0 && best_sum == std::numeric_limits<int>::max()) {
    return 0.0;  // no common ancestor
  }
  double denominator = static_cast<double>(best_sum + 2 * best_depth);
  if (denominator <= 0.0) return 0.0;  // both are roots and disjoint
  return (2.0 * best_depth) / denominator;
}

}  // namespace xsdf::sim
