#include "obs/trace.h"

#include <algorithm>

#include "common/strings.h"
#include "obs/json_writer.h"

namespace xsdf::obs {

namespace {

std::atomic<uint64_t> g_next_session_id{1};

}  // namespace

TraceSession::TraceSession()
    : id_(g_next_session_id.fetch_add(1, std::memory_order_relaxed)),
      start_ns_(MonotonicNowNs()) {}

TraceSession::ThreadLog* TraceSession::GetThreadLog() {
  thread_local uint64_t cached_session_id = 0;
  thread_local ThreadLog* cached_log = nullptr;
  if (cached_session_id != id_) {
    std::lock_guard<std::mutex> lock(mu_);
    logs_.push_back(std::make_unique<ThreadLog>());
    logs_.back()->tid_ = static_cast<int>(logs_.size());
    cached_log = logs_.back().get();
    cached_session_id = id_;
  }
  return cached_log;
}

std::vector<TraceSession::ExportedEvent> TraceSession::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ExportedEvent> events;
  for (const auto& log : logs_) {
    for (const Event& event : log->events_) {
      ExportedEvent exported;
      exported.name = event.name;
      exported.arg = event.arg;
      exported.ts_ns = event.ts_ns;
      exported.dur_ns = event.dur_ns;
      exported.tid = log->tid_;
      exported.thread_name = log->name_;
      events.push_back(std::move(exported));
    }
  }
  return events;
}

size_t TraceSession::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& log : logs_) total += log->events_.size();
  return total;
}

std::string TraceSession::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("traceEvents").BeginArray();
  for (const auto& log : logs_) {
    if (!log->name_.empty()) {
      writer.BeginObject();
      writer.Key("ph").Value("M");
      writer.Key("name").Value("thread_name");
      writer.Key("pid").Value(1);
      writer.Key("tid").Value(log->tid_);
      writer.Key("args").BeginObject();
      writer.Key("name").Value(log->name_);
      writer.EndObject();
      writer.EndObject();
    }
    for (const Event& event : log->events_) {
      writer.BeginObject();
      writer.Key("ph").Value("X");
      writer.Key("name").Value(event.name);
      writer.Key("cat").Value("xsdf");
      writer.Key("pid").Value(1);
      writer.Key("tid").Value(log->tid_);
      // Chrome trace timestamps are microseconds; keep ns precision in
      // the fraction.
      writer.Key("ts").Raw(
          StrFormat("%.3f", static_cast<double>(event.ts_ns) / 1000.0));
      writer.Key("dur").Raw(
          StrFormat("%.3f", static_cast<double>(event.dur_ns) / 1000.0));
      if (!event.arg.empty()) {
        writer.Key("args").BeginObject();
        writer.Key("arg").Value(event.arg);
        writer.EndObject();
      }
      writer.EndObject();
    }
  }
  writer.EndArray();
  writer.Key("displayTimeUnit").Value("ms");
  writer.EndObject();
  return writer.TakeString();
}

}  // namespace xsdf::obs
