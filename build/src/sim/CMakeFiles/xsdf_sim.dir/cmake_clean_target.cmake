file(REMOVE_RECURSE
  "libxsdf_sim.a"
)
