#ifndef XSDF_COMMON_RESULT_H_
#define XSDF_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace xsdf {

/// A value-or-error union in the style of `absl::StatusOr<T>`.
///
/// A `Result<T>` holds either a `T` (and an OK status) or a non-OK
/// `Status`. Accessing the value of an errored result is a programming
/// error and aborts in debug builds.
template <typename T>
class Result {
 public:
  /// Constructs an errored result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a `Result<T>` expression); on error returns its
/// status from the enclosing function, otherwise assigns the value to
/// `lhs` (a declaration or assignable lvalue).
#define XSDF_ASSIGN_OR_RETURN(lhs, rexpr)                 \
  XSDF_ASSIGN_OR_RETURN_IMPL_(                            \
      XSDF_RESULT_CONCAT_(xsdf_result_, __LINE__), lhs, rexpr)

#define XSDF_RESULT_CONCAT_INNER_(a, b) a##b
#define XSDF_RESULT_CONCAT_(a, b) XSDF_RESULT_CONCAT_INNER_(a, b)
#define XSDF_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

}  // namespace xsdf

#endif  // XSDF_COMMON_RESULT_H_
