# Empty compiler generated dependencies file for xsdf_xml.
# This may be replaced when dependencies are built.
