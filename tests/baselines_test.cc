// Tests for the reimplemented comparison baselines: RPD (root-path
// disambiguation) and VSD (Gaussian-decay versatile structural
// disambiguation).

#include <gtest/gtest.h>

#include <cmath>

#include "core/baselines.h"
#include "core/tree_builder.h"
#include "wordnet/mini_wordnet.h"

namespace xsdf::core {
namespace {

using wordnet::SemanticNetwork;

const SemanticNetwork& Network() {
  static const SemanticNetwork* network = [] {
    auto result = wordnet::BuildMiniWordNet();
    return new SemanticNetwork(std::move(result).value());
  }();
  return *network;
}

const char* kMovieDoc =
    "<films><picture><director>Hitchcock</director>"
    "<cast><star>Kelly</star></cast></picture></films>";

TEST(RpdTest, DisambiguatesStructureNodes) {
  auto tree = BuildTreeFromXml(kMovieDoc, Network());
  ASSERT_TRUE(tree.ok());
  RpdBaseline rpd(&Network());
  auto result = rpd.RunOnTree(*tree);
  ASSERT_TRUE(result.ok());
  // All element labels are in the lexicon -> all assigned.
  int structure_nodes = 0;
  for (const auto& node : result->tree.nodes()) {
    if (node.kind != xml::TreeNodeKind::kToken) ++structure_nodes;
  }
  EXPECT_EQ(static_cast<int>(result->assignments.size()),
            structure_nodes);
}

TEST(RpdTest, NeverTouchesContentTokens) {
  auto tree = BuildTreeFromXml(kMovieDoc, Network());
  ASSERT_TRUE(tree.ok());
  RpdBaseline rpd(&Network());
  auto result = rpd.RunOnTree(*tree);
  ASSERT_TRUE(result.ok());
  for (const auto& [id, assignment] : result->assignments) {
    EXPECT_NE(result->tree.node(id).kind, xml::TreeNodeKind::kToken);
  }
}

TEST(RpdTest, ScoreUsesRootPathContext) {
  auto tree = BuildTreeFromXml(kMovieDoc, Network());
  ASSERT_TRUE(tree.ok());
  RpdBaseline rpd(&Network());
  // Find the "cast" node: its path context (film/picture ancestors,
  // star descendants) strongly supports the cast-of-actors sense over
  // the plaster-cast sense.
  xml::NodeId cast = xml::kInvalidNode;
  for (const auto& node : tree->nodes()) {
    if (node.label == "cast") cast = node.id;
  }
  ASSERT_NE(cast, xml::kInvalidNode);
  auto actors = wordnet::MiniWordNetConceptByKey("cast.actors.n");
  ASSERT_TRUE(actors.ok());
  // A candidate scored with path context present is positive...
  EXPECT_GT(rpd.Score(*tree, cast, *actors), 0.0);
  // ...and with no context at all (single-node tree) it is zero.
  xml::LabeledTree lone;
  lone.AddNode(xml::kInvalidNode, "cast", xml::TreeNodeKind::kElement);
  EXPECT_DOUBLE_EQ(rpd.Score(lone, 0, *actors), 0.0);
}

TEST(VsdTest, GaussianDecayShape) {
  VsdBaseline vsd(&Network());
  EXPECT_DOUBLE_EQ(vsd.DecayWeight(0), 1.0);
  EXPECT_GT(vsd.DecayWeight(1), vsd.DecayWeight(2));
  EXPECT_GT(vsd.DecayWeight(2), vsd.DecayWeight(3));
  // sigma controls the width.
  VsdBaseline::Options narrow;
  narrow.sigma = 0.5;
  VsdBaseline vsd_narrow(&Network(), narrow);
  EXPECT_LT(vsd_narrow.DecayWeight(2), vsd.DecayWeight(2));
}

TEST(VsdTest, LeacockChodorowProperties) {
  VsdBaseline vsd(&Network());
  auto actor = wordnet::MiniWordNetConceptByKey("actor.n");
  auto actress = wordnet::MiniWordNetConceptByKey("actress.n");
  auto calorie = wordnet::MiniWordNetConceptByKey("calorie.n");
  ASSERT_TRUE(actor.ok());
  EXPECT_DOUBLE_EQ(vsd.LeacockChodorow(*actor, *actor), 1.0);
  double near = vsd.LeacockChodorow(*actor, *actress);
  double far = vsd.LeacockChodorow(*actor, *calorie);
  EXPECT_GT(near, far);
  EXPECT_GE(far, 0.0);
  EXPECT_LE(near, 1.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(vsd.LeacockChodorow(*actor, *actress),
                   vsd.LeacockChodorow(*actress, *actor));
}

TEST(VsdTest, CrossableThresholdLimitsContext) {
  // With a very tight threshold only the immediate ring is crossable,
  // so scores shrink relative to a permissive threshold.
  auto tree = BuildTreeFromXml(kMovieDoc, Network());
  ASSERT_TRUE(tree.ok());
  xml::NodeId star = xml::kInvalidNode;
  for (const auto& node : tree->nodes()) {
    if (node.label == "star") star = node.id;
  }
  auto performer = wordnet::MiniWordNetConceptByKey("star.performer.n");
  VsdBaseline::Options tight;
  tight.threshold = 0.75;
  VsdBaseline vsd_tight(&Network(), tight);
  VsdBaseline vsd_loose(&Network());
  EXPECT_LT(vsd_tight.Score(*tree, star, *performer),
            vsd_loose.Score(*tree, star, *performer));
}

TEST(VsdTest, RunAssignsStructureOnly) {
  auto tree = BuildTreeFromXml(kMovieDoc, Network());
  ASSERT_TRUE(tree.ok());
  VsdBaseline vsd(&Network());
  auto result = vsd.RunOnTree(*tree);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->assignments.empty());
  for (const auto& [id, assignment] : result->assignments) {
    EXPECT_NE(result->tree.node(id).kind, xml::TreeNodeKind::kToken);
    EXPECT_FALSE(assignment.sense.is_compound());
  }
}

TEST(BaselineComparisonTest, SystemsDisagreeSomewhere) {
  // RPD and VSD are different algorithms; across a reasonable document
  // they should not produce identical sense assignments everywhere.
  const char* doc =
      "<club><name>golf</name><president>Stewart</president>"
      "<members><member><hobby>tennis</hobby></member></members></club>";
  auto tree = BuildTreeFromXml(doc, Network());
  ASSERT_TRUE(tree.ok());
  RpdBaseline rpd(&Network());
  VsdBaseline vsd(&Network());
  auto rpd_result = rpd.RunOnTree(*tree);
  auto vsd_result = vsd.RunOnTree(*tree);
  ASSERT_TRUE(rpd_result.ok());
  ASSERT_TRUE(vsd_result.ok());
  EXPECT_EQ(rpd_result->assignments.size(),
            vsd_result->assignments.size());
}

}  // namespace
}  // namespace xsdf::core
