#ifndef XSDF_RUNTIME_SIMILARITY_CACHE_H_
#define XSDF_RUNTIME_SIMILARITY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/stats.h"
#include "sim/combined.h"

namespace xsdf::runtime {

/// Thread-safe shared memo for sim::CombinedMeasure, shared by every
/// worker of an engine. Entries are keyed on (concept pair, measure
/// composition): the pair key comes from the measure through the
/// SimilarityCacheHook interface, and the fingerprint of the full
/// ordered (measure-name, weight) composition — MeasureConfig::
/// Fingerprint() — is fixed at construction. Keying on the whole
/// composition, not just the three default weights, means two
/// different configs (say the paper hybrid and conceptual-density:1)
/// occupy provably disjoint key spaces and can never alias an entry,
/// even if a future refactor shares one table between them.
///
/// The stored key is a single pre-mixed 64-bit word,
/// Mix64(pair_key) ^ config_fp. Mix64 is bijective, so within one
/// cache instance (one fixed fingerprint) distinct pairs can never
/// collide, and the mixed bits index the table directly.
///
/// Layout is a fixed-capacity 4-way set-associative table whose hit
/// path takes no lock: readers probe the set's four ways and validate
/// against a per-set sequence counter (seqlock), so a hit costs a few
/// loads plus one striped counter increment — cheaper than the private
/// per-worker memo it replaces, which is what lets the shared cache
/// beat cache-off even at one thread. Writers (misses are <1% of
/// steady-state traffic) serialize per set through the sequence
/// counter; a full set overwrites a deterministic victim way.
/// Hit/miss/eviction counters are exact (striped relaxed atomics).
///
/// Concurrent Insert order is racy across workers, but cached values
/// are pure functions of the key, so any interleaving stores the same
/// double and batch outputs stay byte-identical for any worker count.
class SimilarityCache : public sim::SimilarityCacheHook {
 public:
  /// `capacity` is rounded up to a power-of-two slot count (>= 64).
  /// `stripe_count` stripes the statistics counters (rounded up to a
  /// power of two); it no longer affects data placement.
  /// `config_fingerprint` is the MeasureConfig::Fingerprint() of the
  /// composition whose values this cache stores.
  SimilarityCache(size_t capacity, size_t stripe_count,
                  uint64_t config_fingerprint);

  /// Convenience: a cache for the paper hybrid under `weights`
  /// (fingerprint = ConfigFingerprint(weights.ToConfig())).
  SimilarityCache(size_t capacity, size_t stripe_count,
                  const sim::SimilarityWeights& weights);

  bool Lookup(uint64_t pair_key, double* value) override;
  void Insert(uint64_t pair_key, double value) override;

  /// Pipelined batch probe: all keys are premixed and their sets
  /// prefetched in one pass before any is probed, hiding the
  /// cache-miss latency of the random set walk behind the whole batch.
  /// Per-key results and hit/miss/retry accounting are exactly those
  /// of a Lookup() loop.
  void LookupBatch(const uint64_t* keys, size_t count, double* out_values,
                   uint8_t* out_found) override;

  CacheStats GetStats() const;
  void ResetCounters();
  void Clear();

  /// 64-bit fingerprint of a measure composition (bit-exact on the
  /// ordered names and weights) — MeasureConfig::Fingerprint().
  static uint64_t ConfigFingerprint(const sim::MeasureConfig& config);

  /// Fingerprint of the paper hybrid under `weights`; equal to
  /// ConfigFingerprint(weights.ToConfig()), so a weights-constructed
  /// cache and a config-constructed cache for the same composition
  /// agree.
  static uint64_t WeightsFingerprint(const sim::SimilarityWeights& weights);

  /// Test hook: the mixed stored key for `pair_key` under this cache's
  /// fingerprint. Lets tests prove that two caches for different
  /// configs map the same concept pair to different keys (no aliasing
  /// were their tables ever merged).
  uint64_t MixKeyForTest(uint64_t pair_key) const {
    return MixKey(pair_key);
  }

  static constexpr size_t kWays = 4;

 private:
  /// One set: a seqlock (even = stable, odd = writer active) guarding
  /// four (key, value-bits) ways. Key 0 marks an empty way — the one
  /// pair whose mixed key is exactly 0 simply never caches.
  struct alignas(64) Set {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> key[kWays] = {};
    std::atomic<uint64_t> value[kWays] = {};
  };
  struct alignas(64) Stripe {
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> fills{0};  ///< empty ways claimed
    std::atomic<uint64_t> read_retries{0};      ///< seqlock reads redone
    std::atomic<uint64_t> write_collisions{0};  ///< seq-CAS acquire misses
  };

  uint64_t MixKey(uint64_t pair_key) const;
  /// The seqlock probe + stats update shared by Lookup() and
  /// LookupBatch(); `key` is already mixed.
  bool LookupMixed(uint64_t key, double* value);
  Stripe& StripeFor(size_t set_index) {
    return stripes_[set_index & stripe_mask_];
  }

  uint64_t config_fp_;
  size_t set_mask_ = 0;
  size_t stripe_mask_ = 0;
  std::unique_ptr<Set[]> sets_;
  std::unique_ptr<Stripe[]> stripes_;
};

}  // namespace xsdf::runtime

#endif  // XSDF_RUNTIME_SIMILARITY_CACHE_H_
