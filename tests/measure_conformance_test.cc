// Conformance harness every registered similarity measure must pass
// (the contract stated on sim::SimilarityMeasure, checked rather than
// assumed): scores in [0, 1], bit-exact symmetry, Sim(c, c) == 1,
// determinism across repeated calls, bit-identity at every supported
// SIMD dispatch level, and 1-vs-8-worker byte-identity of full engine
// output under every measure composition. New measures added to
// MeasureRegistry::Global() are swept automatically — the suite
// enumerates the registry, so "register it" is all a new measure needs
// to do to be held to the same bar.
//
// Also hosts the registry thread-safety test (concurrent
// Register/Create/Names on the global registry; run under TSan in CI)
// and the conceptual-density table-vs-walk oracle equivalence.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/simd.h"
#include "datasets/generator.h"
#include "runtime/engine.h"
#include "sim/combined.h"
#include "sim/conceptual_density.h"
#include "sim/measure.h"
#include "sim/measure_config.h"
#include "sim/wu_palmer.h"
#include "wordnet/mini_wordnet.h"

namespace xsdf {
namespace {

using sim::MeasureConfig;
using sim::MeasureRegistry;
using wordnet::ConceptId;
using wordnet::SemanticNetwork;

const SemanticNetwork& Network() {
  static const SemanticNetwork* network = [] {
    auto result = wordnet::BuildMiniWordNet();
    return new SemanticNetwork(std::move(result).value());
  }();
  return *network;
}

uint64_t Bits(double value) { return std::bit_cast<uint64_t>(value); }

/// Deterministic sample of concept pairs spread across the network —
/// same coverage on every run and every machine, no RNG state.
std::vector<std::pair<ConceptId, ConceptId>> SamplePairs() {
  const SemanticNetwork& network = Network();
  const size_t n = network.size();
  std::vector<std::pair<ConceptId, ConceptId>> pairs;
  for (size_t i = 0; i < n; i += 17) {
    for (size_t j = i + 3; j < n; j += 71) {
      pairs.emplace_back(static_cast<ConceptId>(i),
                         static_cast<ConceptId>(j));
    }
  }
  return pairs;
}

/// Every level this CPU and build can run (always includes scalar).
std::vector<simd::Level> SupportedLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::DetectedLevel() >= simd::Level::kSse2) {
    levels.push_back(simd::Level::kSse2);
  }
  if (simd::DetectedLevel() >= simd::Level::kAvx2) {
    levels.push_back(simd::Level::kAvx2);
  }
  return levels;
}

struct LevelGuard {
  ~LevelGuard() { simd::ForceLevel(simd::DetectedLevel()); }
};

// ==================== Per-measure property sweep ====================

class MeasureConformanceTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(MeasureConformanceTest, RangeSymmetryIdentityDeterminism) {
  auto created = MeasureRegistry::Global().Create(GetParam());
  ASSERT_TRUE(created.ok());
  const sim::SimilarityMeasure& measure = **created;
  const SemanticNetwork& network = Network();
  const size_t n = network.size();
  for (size_t i = 0; i < n; i += 13) {
    ConceptId c = static_cast<ConceptId>(i);
    EXPECT_EQ(Bits(measure.Similarity(network, c, c)), Bits(1.0))
        << GetParam() << " Sim(c, c) != 1 for concept " << i;
  }
  for (const auto& [a, b] : SamplePairs()) {
    double ab = measure.Similarity(network, a, b);
    double ba = measure.Similarity(network, b, a);
    EXPECT_GE(ab, 0.0) << GetParam() << " (" << a << "," << b << ")";
    EXPECT_LE(ab, 1.0) << GetParam() << " (" << a << "," << b << ")";
    EXPECT_EQ(Bits(ab), Bits(ba))
        << GetParam() << " not bit-symmetric on (" << a << "," << b << ")";
    EXPECT_EQ(Bits(ab), Bits(measure.Similarity(network, a, b)))
        << GetParam() << " not deterministic on (" << a << "," << b << ")";
  }
}

TEST_P(MeasureConformanceTest, BitIdenticalAcrossSimdLevels) {
  const SemanticNetwork& network = Network();
  const auto pairs = SamplePairs();
  LevelGuard restore;
  std::vector<uint64_t> baseline;
  for (simd::Level level : SupportedLevels()) {
    simd::ForceLevel(level);
    // A fresh instance per level: no memo or lazily built table may
    // carry scores across levels.
    auto created = MeasureRegistry::Global().Create(GetParam());
    ASSERT_TRUE(created.ok());
    std::vector<uint64_t> scores;
    scores.reserve(pairs.size());
    for (const auto& [a, b] : pairs) {
      scores.push_back(Bits((*created)->Similarity(network, a, b)));
    }
    if (baseline.empty()) {
      baseline = std::move(scores);
      continue;
    }
    ASSERT_EQ(scores.size(), baseline.size());
    for (size_t i = 0; i < scores.size(); ++i) {
      EXPECT_EQ(scores[i], baseline[i])
          << GetParam() << " diverges from scalar at "
          << simd::LevelName(level) << " on pair (" << pairs[i].first
          << "," << pairs[i].second << ")";
    }
  }
}

// The registry contents at suite-instantiation time: the five
// built-ins (tests that register extra probe measures run later).
INSTANTIATE_TEST_SUITE_P(
    AllRegisteredMeasures, MeasureConformanceTest,
    ::testing::ValuesIn(MeasureRegistry::Global().Names()));

TEST(MeasureRegistryConformanceTest, FiveBuiltInsRegistered) {
  auto names = MeasureRegistry::Global().Names();
  for (const char* expected :
       {"conceptual-density", "gloss-overlap", "lin", "resnik",
        "wu-palmer"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected),
              names.end())
        << expected << " missing from the global registry";
  }
}

// ==================== Conceptual density specifics ==================

TEST(ConceptualDensityConformanceTest, TableMatchesLegacyWalkOracle) {
  const SemanticNetwork& network = Network();
  sim::ConceptualDensityMeasure measure;
  for (const auto& [a, b] : SamplePairs()) {
    EXPECT_EQ(
        Bits(measure.Similarity(network, a, b)),
        Bits(sim::ConceptualDensityMeasure::LegacySimilarity(network, a, b)))
        << "table path diverges from the walk oracle on (" << a << ","
        << b << ")";
  }
}

TEST(ConceptualDensityConformanceTest, SharedInstanceIsThreadSafe) {
  // One instance, many threads: the lazily built subtree table must
  // publish safely (this is the serve-engine sharing shape; run under
  // TSan in CI).
  const SemanticNetwork& network = Network();
  sim::ConceptualDensityMeasure measure;
  const auto pairs = SamplePairs();
  std::vector<uint64_t> expected;
  expected.reserve(pairs.size());
  for (const auto& [a, b] : pairs) {
    expected.push_back(Bits(
        sim::ConceptualDensityMeasure::LegacySimilarity(network, a, b)));
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < pairs.size(); ++i) {
        if (Bits(measure.Similarity(network, pairs[i].first,
                                    pairs[i].second)) != expected[i]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ==================== Registry thread safety ========================

TEST(MeasureRegistryConcurrencyTest, ConcurrentRegisterCreateNames) {
  // Writers hammer Register (fresh names and overwrites) on the global
  // registry while readers Create built-ins and snapshot Names — the
  // serve hot-swap shape the shared mutex exists for. TSan (CI `tsan`
  // job) turns any lost lock into a hard failure; the probe factories
  // are real measures, so later sweeps are unaffected by the leftover
  // registrations.
  std::atomic<bool> start{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([w, &start] {
      while (!start.load()) {}
      for (int i = 0; i < 200; ++i) {
        std::string name =
            "tsan-probe-" + std::to_string(w) + "-" + std::to_string(i % 8);
        MeasureRegistry::Global().Register(name, [] {
          return std::make_unique<sim::WuPalmerMeasure>();
        });
      }
    });
  }
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&start, &failures] {
      while (!start.load()) {}
      for (int i = 0; i < 200; ++i) {
        auto created = MeasureRegistry::Global().Create("lin");
        if (!created.ok()) failures.fetch_add(1);
        auto names = MeasureRegistry::Global().Names();
        if (names.empty()) failures.fetch_add(1);
      }
    });
  }
  start.store(true);
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  auto probe = MeasureRegistry::Global().Create("tsan-probe-0-0");
  EXPECT_TRUE(probe.ok());
}

// ==================== Engine worker-count identity ==================

std::vector<runtime::DocumentJob> ConformanceCorpus() {
  std::vector<runtime::DocumentJob> jobs;
  for (const auto& doc : datasets::Figure1Documents()) {
    jobs.push_back({0, doc.name, doc.xml});
  }
  return jobs;
}

std::vector<std::string> RunEngine(const MeasureConfig& config,
                                   int threads) {
  runtime::EngineOptions options;
  options.threads = threads;
  options.disambiguator.measure_config = config;
  runtime::DisambiguationEngine engine(&Network(), options);
  auto results = engine.RunBatch(ConformanceCorpus());
  std::vector<std::string> trees;
  trees.reserve(results.size());
  for (const auto& result : results) {
    EXPECT_TRUE(result.ok) << result.name << ": " << result.error;
    trees.push_back(result.semantic_xml);
  }
  return trees;
}

TEST(MeasureEngineConformanceTest, WorkersByteIdenticalPerConfig) {
  // Every single-measure config plus the two production hybrids: 1 and
  // 8 workers must emit byte-identical semantic trees (the engine's
  // determinism contract must hold for any composition, not just the
  // paper default the seed tests pinned).
  std::vector<MeasureConfig> configs;
  for (const std::string& name :
       {"wu-palmer", "lin", "gloss-overlap", "resnik",
        "conceptual-density"}) {
    MeasureConfig single;
    single.entries = {{name, 1.0}};
    configs.push_back(single);
  }
  configs.push_back(MeasureConfig::PaperHybrid());
  configs.push_back(*MeasureConfig::Parse(
      "wu-palmer:0.25,lin:0.25,gloss-overlap:0.25,conceptual-density:0.25"));
  for (const MeasureConfig& config : configs) {
    std::vector<std::string> one = RunEngine(config, 1);
    std::vector<std::string> eight = RunEngine(config, 8);
    ASSERT_EQ(one.size(), eight.size()) << config.ToSpec();
    for (size_t i = 0; i < one.size(); ++i) {
      EXPECT_EQ(one[i], eight[i])
          << config.ToSpec() << " differs on document " << i
          << " between 1 and 8 workers";
    }
  }
}

}  // namespace
}  // namespace xsdf
