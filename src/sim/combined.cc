#include "sim/combined.h"

#include <algorithm>
#include <cmath>

#include "sim/gloss_overlap.h"
#include "sim/lin.h"
#include "sim/wu_palmer.h"

namespace xsdf::sim {

bool SimilarityWeights::Valid() const {
  if (edge < 0.0 || node < 0.0 || gloss < 0.0) return false;
  return std::fabs(edge + node + gloss - 1.0) < 1e-9;
}

CombinedMeasure::CombinedMeasure(SimilarityWeights weights)
    : weights_(weights) {
  components_.emplace_back(std::make_unique<WuPalmerMeasure>(),
                           weights.edge);
  components_.emplace_back(std::make_unique<LinMeasure>(), weights.node);
  components_.emplace_back(std::make_unique<GlossOverlapMeasure>(),
                           weights.gloss);
}

Result<std::unique_ptr<CombinedMeasure>> CombinedMeasure::FromRegistry(
    const std::vector<std::pair<std::string, double>>& weighted_names) {
  double total = 0.0;
  for (const auto& [name, weight] : weighted_names) {
    if (weight < 0.0) {
      return Status::InvalidArgument("negative weight for measure " + name);
    }
    total += weight;
  }
  if (std::fabs(total - 1.0) > 1e-9) {
    return Status::InvalidArgument("measure weights must sum to 1");
  }
  auto combined =
      std::unique_ptr<CombinedMeasure>(new CombinedMeasure(RawTag{}));
  for (const auto& [name, weight] : weighted_names) {
    auto measure = MeasureRegistry::Global().Create(name);
    if (!measure.ok()) return measure.status();
    combined->components_.emplace_back(std::move(measure).value(), weight);
  }
  return combined;
}

uint64_t CombinedMeasure::PairKey(wordnet::ConceptId a,
                                 wordnet::ConceptId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

double CombinedMeasure::Similarity(const wordnet::SemanticNetwork& network,
                                   wordnet::ConceptId a,
                                   wordnet::ConceptId b) const {
  const uint64_t key = PairKey(a, b);
  if (external_cache_ != nullptr) {
    double cached = 0.0;
    if (external_cache_->Lookup(key, &cached)) return cached;
  } else {
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  double sim = 0.0;
  for (const auto& [measure, weight] : components_) {
    if (weight > 0.0) sim += weight * measure->Similarity(network, a, b);
  }
  if (sim > 1.0) sim = 1.0;
  if (external_cache_ != nullptr) {
    external_cache_->Insert(key, sim);
  } else {
    cache_.emplace(key, sim);
  }
  return sim;
}

}  // namespace xsdf::sim
