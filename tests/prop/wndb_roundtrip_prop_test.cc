// Property tests for the WNDB codec: WriteWndb -> ParseWndb ->
// WriteWndb must be byte-identical on randomized mini-lexicons, the
// parse must preserve the network's observable semantics, and the
// fuzz-container pack/unpack pair must be mutually inverse.

#include <gtest/gtest.h>

#include <string>

#include "common/strings.h"
#include "prop/generators.h"
#include "wordnet/wndb.h"

namespace xsdf {
namespace {

/// Points at the first differing line of two file images, for
/// actionable failure output.
std::string FirstDifference(const std::string& a, const std::string& b) {
  size_t pos = 0;
  int line = 1;
  while (pos < a.size() && pos < b.size() && a[pos] == b[pos]) {
    if (a[pos] == '\n') ++line;
    ++pos;
  }
  size_t begin = a.rfind('\n', pos);
  begin = begin == std::string::npos ? 0 : begin + 1;
  return StrFormat("line %d:\n  first:  %s\n  second: %s", line,
                   a.substr(begin, 120).c_str(),
                   b.substr(begin, 120).c_str());
}

TEST(WndbRoundTripProp, WriteParseWriteIsByteIdentical) {
  Rng rng(0xbeef0001);
  for (int i = 0; i < 60; ++i) {
    wordnet::SemanticNetwork network = propgen::GenerateMiniLexicon(rng);
    auto files1 = wordnet::WriteWndb(network);
    ASSERT_TRUE(files1.ok()) << files1.status().ToString();
    auto parsed = wordnet::ParseWndb(*files1);
    ASSERT_TRUE(parsed.ok())
        << "lexicon " << i << ": " << parsed.status().ToString();
    auto files2 = wordnet::WriteWndb(*parsed);
    ASSERT_TRUE(files2.ok()) << files2.status().ToString();
    ASSERT_EQ(files1->size(), files2->size()) << "lexicon " << i;
    for (const auto& [name, contents] : *files1) {
      ASSERT_TRUE(files2->count(name)) << "lexicon " << i << " lost "
                                       << name;
      const std::string& reparsed = files2->at(name);
      ASSERT_EQ(contents, reparsed)
          << "lexicon " << i << ", file " << name << ", "
          << FirstDifference(contents, reparsed);
    }
  }
}

TEST(WndbRoundTripProp, ParsePreservesNetworkSemantics) {
  Rng rng(0xbeef0002);
  for (int i = 0; i < 40; ++i) {
    wordnet::SemanticNetwork network = propgen::GenerateMiniLexicon(rng);
    auto files = wordnet::WriteWndb(network);
    ASSERT_TRUE(files.ok()) << files.status().ToString();
    auto parsed = wordnet::ParseWndb(*files);
    ASSERT_TRUE(parsed.ok())
        << "lexicon " << i << ": " << parsed.status().ToString();
    EXPECT_EQ(parsed->size(), network.size()) << "lexicon " << i;
    EXPECT_EQ(parsed->LemmaCount(), network.LemmaCount())
        << "lexicon " << i;
    EXPECT_EQ(parsed->MaxPolysemy(), network.MaxPolysemy())
        << "lexicon " << i;
    EXPECT_EQ(parsed->MaxDepth(), network.MaxDepth()) << "lexicon " << i;
    EXPECT_DOUBLE_EQ(parsed->TotalFrequency(), network.TotalFrequency())
        << "lexicon " << i;
  }
}

TEST(WndbContainerProp, PackUnpackIsInverse) {
  Rng rng(0xbeef0003);
  for (int i = 0; i < 25; ++i) {
    wordnet::SemanticNetwork network = propgen::GenerateMiniLexicon(rng);
    auto files = wordnet::WriteWndb(network);
    ASSERT_TRUE(files.ok()) << files.status().ToString();
    std::string blob = propgen::PackWndbContainer(*files);
    wordnet::WndbFiles unpacked = propgen::UnpackWndbContainer(blob);
    ASSERT_EQ(unpacked.size(), files->size()) << "lexicon " << i;
    for (const auto& [name, contents] : *files) {
      ASSERT_TRUE(unpacked.count(name)) << "lexicon " << i << " lost "
                                        << name;
      EXPECT_EQ(unpacked.at(name), contents)
          << "lexicon " << i << ", file " << name << ", "
          << FirstDifference(contents, unpacked.at(name));
    }
    // And the unpacked set still parses to the same network shape.
    auto parsed = wordnet::ParseWndb(unpacked);
    ASSERT_TRUE(parsed.ok())
        << "lexicon " << i << ": " << parsed.status().ToString();
    EXPECT_EQ(parsed->size(), network.size());
  }
}

}  // namespace
}  // namespace xsdf
