#ifndef XSDF_RUNTIME_SHARDED_LRU_CACHE_H_
#define XSDF_RUNTIME_SHARDED_LRU_CACHE_H_

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "runtime/stats.h"

namespace xsdf::runtime {

/// A thread-safe LRU cache striped into independently locked shards.
/// A key's shard is fixed (hash(key) % shards), so concurrent lookups
/// of different keys mostly touch different mutexes; within a shard,
/// recency order and eviction are exact LRU. Counters (hit/miss/
/// eviction) are kept per shard under the shard lock — exact, not
/// sampled — and aggregated by GetStats().
///
/// Capacity is split evenly across shards (at least one entry each),
/// so per-shard eviction can trigger before the global entry count
/// reaches `capacity` when keys hash unevenly; with shards = 1 the
/// cache is a textbook LRU, which the unit tests rely on.
///
/// `promote_every` trades recency precision for hit-path speed: with
/// the default of 1 every hit splices the entry to the front (exact
/// LRU); with N > 1 only every Nth hit within a shard promotes, so the
/// common hot-hit path is a hash find plus a counter bump. Eviction
/// order remains deterministic for a deterministic lookup sequence.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  explicit ShardedLruCache(size_t capacity, size_t shard_count = 16,
                           size_t promote_every = 1) {
    if (shard_count == 0) shard_count = 1;
    if (capacity < shard_count) capacity = shard_count;
    if (promote_every == 0) promote_every = 1;
    shard_capacity_ = capacity / shard_count;
    promote_every_ = promote_every;
    shards_.reserve(shard_count);
    for (size_t i = 0; i < shard_count; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  /// Returns true and copies the value when present; promotes the
  /// entry to most-recently-used (every `promote_every`th hit per
  /// shard). Counts one hit or one miss.
  bool Lookup(const Key& key, Value* value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      ++shard.misses;
      return false;
    }
    ++shard.hits;
    if (++shard.hits_since_promote >= promote_every_) {
      shard.hits_since_promote = 0;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    }
    *value = it->second->second;
    return true;
  }

  /// Inserts or overwrites; the entry becomes most-recently-used. The
  /// shard's least-recently-used entry is evicted when it is full.
  void Insert(const Key& key, Value value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      it->second->second = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    shard.lru.emplace_front(key, std::move(value));
    shard.map.emplace(key, shard.lru.begin());
    if (shard.map.size() > shard_capacity_) {
      shard.map.erase(shard.lru.back().first);
      shard.lru.pop_back();
      ++shard.evictions;
    }
  }

  /// Lookup, or compute-and-insert on miss. `compute` runs outside the
  /// shard lock; two threads missing the same key may both compute, and
  /// the later insert wins — benign when `compute` is deterministic.
  template <typename Fn>
  Value GetOrCompute(const Key& key, Fn&& compute) {
    Value value{};
    if (Lookup(key, &value)) return value;
    value = compute();
    Insert(key, value);
    return value;
  }

  CacheStats GetStats() const {
    CacheStats stats;
    stats.capacity = shard_capacity_ * shards_.size();
    stats.shards = shards_.size();
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      stats.hits += shard->hits;
      stats.misses += shard->misses;
      stats.evictions += shard->evictions;
      stats.entries += shard->map.size();
    }
    return stats;
  }

  /// Zeroes hit/miss/eviction counters; cached entries are retained.
  void ResetCounters() {
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->hits = shard->misses = shard->evictions = 0;
    }
  }

  /// Drops every entry (counters are retained).
  void Clear() {
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->map.clear();
      shard->lru.clear();
    }
  }

  size_t size() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      total += shard->map.size();
    }
    return total;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<std::pair<Key, Value>> lru;
    std::unordered_map<Key,
                       typename std::list<std::pair<Key, Value>>::iterator,
                       Hash>
        map;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    /// Hits since the last LRU promotion (see `promote_every`).
    uint64_t hits_since_promote = 0;
  };

  Shard& ShardFor(const Key& key) {
    return *shards_[hasher_(key) % shards_.size()];
  }

  size_t shard_capacity_;
  size_t promote_every_;
  std::vector<std::unique_ptr<Shard>> shards_;
  Hash hasher_;
};

}  // namespace xsdf::runtime

#endif  // XSDF_RUNTIME_SHARDED_LRU_CACHE_H_
