file(REMOVE_RECURSE
  "libxsdf_eval.a"
)
