#ifndef XSDF_EVAL_EXPERIMENT_H_
#define XSDF_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/disambiguator.h"
#include "datasets/generator.h"
#include "eval/gold.h"
#include "eval/metrics.h"
#include "wordnet/semantic_network.h"
#include "xml/labeled_tree.h"

namespace xsdf::eval {

/// One corpus document ready for experiments: generated XML, its
/// labeled tree (built through the full linguistic pipeline), and its
/// resolved gold standard.
struct CorpusDocument {
  datasets::DatasetInfo dataset;
  datasets::GeneratedDocument generated;
  xml::LabeledTree tree;
  GoldMap gold;
  /// The 12-13 sampled target nodes evaluated for this document
  /// (paper protocol: 1000 manually annotated nodes overall), shared
  /// across all compared systems.
  std::vector<xml::NodeId> target_sample;
};

/// Generates the complete 10-family evaluation corpus of Table 3 and
/// prepares every document (tree + resolved gold). Deterministic.
Result<std::vector<CorpusDocument>> BuildCorpus(
    const wordnet::SemanticNetwork& network, uint64_t seed = 20150323);

/// Per-group features of Table 1: average Amb_Deg and Struct_Deg.
struct GroupFeatureRow {
  int group = 0;
  double avg_ambiguity = 0.0;
  double avg_structure = 0.0;
  int documents = 0;
};
std::vector<GroupFeatureRow> ComputeTable1(
    const std::vector<CorpusDocument>& corpus,
    const wordnet::SemanticNetwork& network);

/// One Table 2 row: per-dataset Pearson correlation between the
/// simulated rater panel and Amb_Deg under the four weight configs.
struct CorrelationRow {
  int dataset_id = 0;
  int group = 0;
  double all_factors = 0.0;  ///< Test #1: w_P = w_Dep = w_Den = 1
  double polysemy = 0.0;     ///< Test #2: w_P = 1, others 0
  double depth = 0.0;        ///< Test #3: w_Dep = 1, w_P = 0.2, w_Den = 0
  double density = 0.0;      ///< Test #4: w_Den = 1, w_P = 0.2, w_Dep = 0
  int rated_nodes = 0;
};
std::vector<CorrelationRow> ComputeTable2(
    const std::vector<CorpusDocument>& corpus,
    const wordnet::SemanticNetwork& network, uint64_t seed = 4242);

/// One Table 3 row: dataset shape characteristics.
struct DatasetStatsRow {
  datasets::DatasetInfo info;
  double avg_nodes = 0.0;
  double avg_polysemy = 0.0;
  int max_polysemy = 0;
  double avg_depth = 0.0;
  int max_depth = 0;
  double avg_fan_out = 0.0;
  int max_fan_out = 0;
  double avg_density = 0.0;
  int max_density = 0;
};
std::vector<DatasetStatsRow> ComputeTable3(
    const std::vector<CorpusDocument>& corpus,
    const wordnet::SemanticNetwork& network);

/// One Figure 8 cell: F-value of a configuration on a group.
struct ConfigCell {
  int group = 0;
  int radius = 0;
  core::DisambiguationProcess process =
      core::DisambiguationProcess::kConceptBased;
  PrfScores scores;
};
std::vector<ConfigCell> ComputeFigure8(
    const std::vector<CorpusDocument>& corpus,
    const wordnet::SemanticNetwork& network,
    const std::vector<int>& radii = {1, 2, 3, 4});

/// One Figure 9 cell: P/R/F of one system (XSDF at its optimal
/// configuration, RPD, or VSD) on a group.
struct ComparisonCell {
  int group = 0;
  std::string system;  ///< "XSDF", "RPD", "VSD"
  PrfScores scores;
};
std::vector<ComparisonCell> ComputeFigure9(
    const std::vector<CorpusDocument>& corpus,
    const wordnet::SemanticNetwork& network);

/// The per-group context clarity used by the rater panel (Group 1
/// generic/deep ... Group 4 flat/domain-specific).
double GroupContextClarity(int group);

}  // namespace xsdf::eval

#endif  // XSDF_EVAL_EXPERIMENT_H_
