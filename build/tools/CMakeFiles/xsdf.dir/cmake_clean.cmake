file(REMOVE_RECURSE
  "CMakeFiles/xsdf.dir/xsdf_cli.cc.o"
  "CMakeFiles/xsdf.dir/xsdf_cli.cc.o.d"
  "xsdf"
  "xsdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
