file(REMOVE_RECURSE
  "CMakeFiles/xsdf_eval.dir/experiment.cc.o"
  "CMakeFiles/xsdf_eval.dir/experiment.cc.o.d"
  "CMakeFiles/xsdf_eval.dir/gold.cc.o"
  "CMakeFiles/xsdf_eval.dir/gold.cc.o.d"
  "CMakeFiles/xsdf_eval.dir/metrics.cc.o"
  "CMakeFiles/xsdf_eval.dir/metrics.cc.o.d"
  "CMakeFiles/xsdf_eval.dir/raters.cc.o"
  "CMakeFiles/xsdf_eval.dir/raters.cc.o.d"
  "libxsdf_eval.a"
  "libxsdf_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsdf_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
