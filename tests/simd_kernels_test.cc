// Scalar-vs-SIMD equivalence tests for the dispatched id kernels
// (common/simd.h) and everything built on them: every kernel must
// return exactly its scalar reference's result at every dispatch
// level, and every consumer (the four measures, the combined measure,
// IdContextVector comparisons, IdContextScore) must produce
// bit-identical doubles at every level. Also covers the seqlock
// cache's batch probe and the engine's thread auto-detection.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/simd.h"
#include "core/context_vector.h"
#include "core/scores.h"
#include "runtime/engine.h"
#include "runtime/similarity_cache.h"
#include "sim/combined.h"
#include "sim/gloss_overlap.h"
#include "sim/lin.h"
#include "sim/resnik.h"
#include "sim/wu_palmer.h"
#include "wordnet/mini_wordnet.h"
#include "wordnet/semantic_network.h"

namespace xsdf {
namespace {

using wordnet::ConceptId;
using wordnet::SemanticNetwork;

const SemanticNetwork& Network() {
  static const SemanticNetwork* network = [] {
    auto result = wordnet::BuildMiniWordNet();
    return new SemanticNetwork(std::move(result).value());
  }();
  return *network;
}

uint64_t Bits(double value) { return std::bit_cast<uint64_t>(value); }

/// Restores the dispatch level when a test scope ends, whatever the
/// test forced in between.
struct LevelGuard {
  ~LevelGuard() { simd::ForceLevel(simd::DetectedLevel()); }
};

/// Every level this CPU + build can actually run (always includes
/// scalar). ForceLevel clamps upward requests, so running only the
/// supported set keeps the tests meaningful on any machine.
std::vector<simd::Level> SupportedLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::DetectedLevel() >= simd::Level::kSse2) {
    levels.push_back(simd::Level::kSse2);
  }
  if (simd::DetectedLevel() >= simd::Level::kAvx2) {
    levels.push_back(simd::Level::kAvx2);
  }
  return levels;
}

/// A strictly increasing random id set of `len` elements drawn from a
/// range ~3x the length, so intersections are common but not total.
std::vector<uint32_t> StrictSet(std::mt19937& rng, size_t len) {
  std::set<uint32_t> s;
  std::uniform_int_distribution<uint32_t> pick(
      0, static_cast<uint32_t>(3 * len + 8));
  while (s.size() < len) s.insert(pick(rng));
  return {s.begin(), s.end()};
}

/// Reference sorted-set intersection, independent of the production
/// scalar path (a plain two-pointer merge).
size_t ReferenceIntersect(const std::vector<uint32_t>& a,
                          const std::vector<uint32_t>& b,
                          std::vector<uint32_t>* pos_a,
                          std::vector<uint32_t>* pos_b) {
  pos_a->clear();
  pos_b->clear();
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      pos_a->push_back(static_cast<uint32_t>(i));
      pos_b->push_back(static_cast<uint32_t>(j));
      ++i;
      ++j;
    }
  }
  return pos_a->size();
}

/// Interleaves keys with a payload (key * 7 + 1) — the stride-2
/// AncestorEntry-row layout.
std::vector<uint32_t> Interleave(const std::vector<uint32_t>& keys) {
  std::vector<uint32_t> packed;
  packed.reserve(keys.size() * 2);
  for (uint32_t k : keys) {
    packed.push_back(k);
    packed.push_back(k * 7 + 1);
  }
  return packed;
}

void CheckKernelsOnPair(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b) {
  std::vector<uint32_t> want_a;
  std::vector<uint32_t> want_b;
  const size_t want =
      ReferenceIntersect(a, b, &want_a, &want_b);
  const std::vector<uint32_t> packed_a = Interleave(a);
  const std::vector<uint32_t> packed_b = Interleave(b);
  const size_t cap = std::min(a.size(), b.size());
  std::vector<uint32_t> got_a(cap + 1, 0xdeadbeefu);
  std::vector<uint32_t> got_b(cap + 1, 0xdeadbeefu);
  for (simd::Level level : SupportedLevels()) {
    simd::ForceLevel(level);
    const char* name = simd::LevelName(level);
    EXPECT_EQ(simd::SortedIntersectNonEmptyU32(a.data(), a.size(),
                                               b.data(), b.size()),
              want != 0)
        << name;
    size_t got = simd::SortedIntersectPositionsU32(
        a.data(), a.size(), b.data(), b.size(), got_a.data(),
        got_b.data());
    ASSERT_EQ(got, want) << name;
    for (size_t k = 0; k < want; ++k) {
      EXPECT_EQ(got_a[k], want_a[k]) << name << " match " << k;
      EXPECT_EQ(got_b[k], want_b[k]) << name << " match " << k;
    }
    // Null out_b form (the Resnik/Lin LCS path).
    std::fill(got_a.begin(), got_a.end(), 0xdeadbeefu);
    got = simd::SortedIntersectPositionsU32(a.data(), a.size(), b.data(),
                                            b.size(), got_a.data(),
                                            nullptr);
    ASSERT_EQ(got, want) << name << " (null out_b)";
    for (size_t k = 0; k < want; ++k) {
      EXPECT_EQ(got_a[k], want_a[k]) << name << " match " << k;
    }
    // Stride-2 form over the interleaved layout: same positions.
    std::fill(got_a.begin(), got_a.end(), 0xdeadbeefu);
    std::fill(got_b.begin(), got_b.end(), 0xdeadbeefu);
    got = simd::SortedIntersectPositionsStride2(
        packed_a.data(), a.size(), packed_b.data(), b.size(),
        got_a.data(), got_b.data());
    ASSERT_EQ(got, want) << name << " (stride 2)";
    for (size_t k = 0; k < want; ++k) {
      EXPECT_EQ(got_a[k], want_a[k]) << name << " match " << k;
      EXPECT_EQ(got_b[k], want_b[k]) << name << " match " << k;
    }
  }
}

TEST(SimdDispatchTest, DetectedLevelRunsAndNamesAreStable) {
  LevelGuard guard;
  EXPECT_GE(simd::DetectedLevel(), simd::Level::kScalar);
  EXPECT_LE(simd::ActiveLevel(), simd::DetectedLevel());
  EXPECT_STREQ(simd::LevelName(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::LevelName(simd::Level::kSse2), "sse2");
  EXPECT_STREQ(simd::LevelName(simd::Level::kAvx2), "avx2");
  // ForceLevel clamps upward requests to the detected level.
  simd::ForceLevel(simd::Level::kAvx2);
  EXPECT_LE(simd::ActiveLevel(), simd::DetectedLevel());
  simd::ForceLevel(simd::Level::kScalar);
  EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
}

TEST(SimdKernelTest, FindU32MatchesLinearScanAtEveryLevel) {
  LevelGuard guard;
  std::mt19937 rng(20150324);
  for (size_t len = 0; len <= 40; ++len) {
    std::vector<uint32_t> data;
    data.reserve(len);
    std::uniform_int_distribution<uint32_t> pick(0, 30);
    for (size_t i = 0; i < len; ++i) data.push_back(pick(rng));
    for (uint32_t value = 0; value <= 31; ++value) {
      size_t want = len;
      for (size_t i = 0; i < len; ++i) {
        if (data[i] == value) {
          want = i;
          break;
        }
      }
      for (simd::Level level : SupportedLevels()) {
        simd::ForceLevel(level);
        EXPECT_EQ(simd::FindU32(data.data(), len, value), want)
            << simd::LevelName(level) << " len " << len << " value "
            << value;
      }
    }
  }
}

TEST(SimdKernelTest, IntersectionsMatchReferenceOnRandomSets) {
  LevelGuard guard;
  std::mt19937 rng(20150324);
  std::uniform_int_distribution<size_t> len_pick(0, 48);
  for (int round = 0; round < 400; ++round) {
    CheckKernelsOnPair(StrictSet(rng, len_pick(rng)),
                       StrictSet(rng, len_pick(rng)));
  }
}

TEST(SimdKernelTest, EdgeShapesEmptySingleAndRaggedTails) {
  LevelGuard guard;
  // Empty inputs on either or both sides.
  CheckKernelsOnPair({}, {});
  CheckKernelsOnPair({}, {1, 5, 9});
  CheckKernelsOnPair({3}, {});
  // Single-element chains (the single-ancestor case), hit and miss.
  CheckKernelsOnPair({7}, {7});
  CheckKernelsOnPair({7}, {8});
  // Every length pair around the 4- and 8-lane widths, with the only
  // match planted at the very last element of both sides — the match
  // must be found by the scalar tail at every ragged remainder.
  for (size_t la = 1; la <= 19; ++la) {
    for (size_t lb = 1; lb <= 19; ++lb) {
      std::vector<uint32_t> a;
      std::vector<uint32_t> b;
      for (size_t i = 0; i + 1 < la; ++i) {
        a.push_back(static_cast<uint32_t>(2 * i));  // evens
      }
      for (size_t i = 0; i + 1 < lb; ++i) {
        b.push_back(static_cast<uint32_t>(2 * i + 1));  // odds
      }
      const uint32_t sentinel = static_cast<uint32_t>(2 * (la + lb) + 2);
      a.push_back(sentinel);
      b.push_back(sentinel);
      CheckKernelsOnPair(a, b);
    }
  }
}

/// Runs `compute` once per supported level and expects every level to
/// reproduce the scalar level's doubles bit for bit.
template <typename Compute>
void ExpectBitIdenticalAcrossLevels(Compute&& compute,
                                    const char* what) {
  LevelGuard guard;
  simd::ForceLevel(simd::Level::kScalar);
  const std::vector<double> want = compute();
  for (simd::Level level : SupportedLevels()) {
    if (level == simd::Level::kScalar) continue;
    simd::ForceLevel(level);
    const std::vector<double> got = compute();
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(Bits(got[i]), Bits(want[i]))
          << what << " diverged at " << simd::LevelName(level)
          << ", sample " << i;
    }
  }
}

/// Deterministic sample of concept pairs covering the whole id range.
std::vector<std::pair<ConceptId, ConceptId>> SamplePairs(size_t count) {
  std::mt19937 rng(20150324);
  std::uniform_int_distribution<int> pick(
      0, static_cast<int>(Network().size()) - 1);
  std::vector<std::pair<ConceptId, ConceptId>> pairs;
  pairs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    pairs.emplace_back(pick(rng), pick(rng));
  }
  return pairs;
}

TEST(SimdEquivalenceTest, EveryMeasureIsBitIdenticalAcrossLevels) {
  const SemanticNetwork& network = Network();
  const auto pairs = SamplePairs(300);
  auto sweep = [&](const sim::SimilarityMeasure& measure) {
    return [&network, &pairs, &measure] {
      std::vector<double> values;
      values.reserve(pairs.size());
      for (auto [a, b] : pairs) {
        values.push_back(measure.Similarity(network, a, b));
      }
      return values;
    };
  };
  sim::WuPalmerMeasure wu_palmer;
  sim::ResnikMeasure resnik;
  sim::LinMeasure lin;
  sim::GlossOverlapMeasure gloss;
  ExpectBitIdenticalAcrossLevels(sweep(wu_palmer), "wu_palmer");
  ExpectBitIdenticalAcrossLevels(sweep(resnik), "resnik");
  ExpectBitIdenticalAcrossLevels(sweep(lin), "lin");
  ExpectBitIdenticalAcrossLevels(sweep(gloss), "gloss_overlap");
  // Combined gets a fresh measure per sweep so its memo cannot leak
  // values across levels.
  ExpectBitIdenticalAcrossLevels(
      [&network, &pairs] {
        sim::CombinedMeasure combined;
        std::vector<double> values;
        values.reserve(pairs.size());
        for (auto [a, b] : pairs) {
          values.push_back(combined.Similarity(network, a, b));
        }
        return values;
      },
      "combined");
}

TEST(SimdEquivalenceTest, ContextVectorComparisonsAcrossLevels) {
  const SemanticNetwork& network = Network();
  std::mt19937 rng(20150324);
  std::uniform_int_distribution<int> pick(
      0, static_cast<int>(network.size()) - 1);
  std::vector<std::pair<ConceptId, ConceptId>> centers;
  for (int i = 0; i < 60; ++i) centers.emplace_back(pick(rng), pick(rng));
  ExpectBitIdenticalAcrossLevels(
      [&] {
        std::vector<double> values;
        core::IdContextVector va;
        core::IdContextVector vb;
        for (auto [ca, cb] : centers) {
          va.Assign(core::BuildConceptIdSphere(network, ca, 2));
          vb.Assign(core::BuildConceptIdSphere(network, cb, 2));
          values.push_back(va.Cosine(vb));
          values.push_back(va.Jaccard(vb));
          values.push_back(vb.Jaccard(va));
        }
        return values;
      },
      "context_vector");
}

TEST(SimdEquivalenceTest, IdContextScoreAcrossLevels) {
  const SemanticNetwork& network = Network();
  std::mt19937 rng(20150324);
  std::uniform_int_distribution<int> pick(
      0, static_cast<int>(network.size()) - 1);
  std::vector<core::SenseCandidate> candidates;
  std::vector<ConceptId> contexts;
  for (int i = 0; i < 30; ++i) {
    core::SenseCandidate candidate;
    candidate.primary = pick(rng);
    if (i % 3 == 0) candidate.secondary = pick(rng);  // compound
    candidates.push_back(candidate);
    contexts.push_back(pick(rng));
  }
  ExpectBitIdenticalAcrossLevels(
      [&] {
        std::vector<double> values;
        core::IdContextVector xml_vector;
        for (size_t i = 0; i < candidates.size(); ++i) {
          xml_vector.Assign(
              core::BuildConceptIdSphere(network, contexts[i], 2));
          values.push_back(core::IdContextScore(
              network, candidates[i], xml_vector, 2,
              core::VectorSimilarity::kCosine));
          values.push_back(core::IdContextScore(
              network, candidates[i], xml_vector, 2,
              core::VectorSimilarity::kJaccard));
        }
        return values;
      },
      "id_context_score");
}

TEST(SimdEquivalenceTest, OovOnlySpheresCompareCleanly) {
  // Spheres made purely of overflow (OOV) label ids never intersect a
  // concept vector; both comparisons must agree with scalar and return
  // finite values at every level.
  const SemanticNetwork& network = Network();
  core::IdSphere oov;
  oov.radius = 2;
  const uint32_t base = 1u << 20;  // far beyond any interned id
  oov.push_back(base, 0);
  for (int i = 1; i <= 12; ++i) oov.push_back(base + 2 * i, 1 + (i % 2));
  ExpectBitIdenticalAcrossLevels(
      [&] {
        core::IdContextVector oov_vector;
        oov_vector.Assign(oov);
        core::IdContextVector concept_vector;
        concept_vector.Assign(core::BuildConceptIdSphere(network, 0, 2));
        core::IdContextVector empty_vector;
        return std::vector<double>{
            oov_vector.Cosine(concept_vector),
            oov_vector.Jaccard(concept_vector),
            concept_vector.Jaccard(oov_vector),
            oov_vector.Cosine(empty_vector),
            empty_vector.Jaccard(oov_vector),
        };
      },
      "oov_sphere");
}

TEST(SimilarityCacheTest, LookupBatchMatchesLookupLoopIncludingStats) {
  sim::SimilarityWeights weights;
  runtime::SimilarityCache batch_cache(1 << 10, 4, weights);
  runtime::SimilarityCache loop_cache(1 << 10, 4, weights);
  std::mt19937 rng(20150324);
  std::uniform_int_distribution<uint64_t> key_pick(1, 500);
  std::vector<uint64_t> inserted;
  for (int i = 0; i < 200; ++i) {
    uint64_t key = key_pick(rng);
    double value = static_cast<double>(key) * 0.25;
    batch_cache.Insert(key, value);
    loop_cache.Insert(key, value);
    inserted.push_back(key);
  }
  // Mixed hit/miss batches, including keys never inserted.
  for (int round = 0; round < 50; ++round) {
    std::vector<uint64_t> keys;
    for (int i = 0; i < 12; ++i) {
      keys.push_back(i % 3 == 0 ? key_pick(rng) + 1000  // guaranteed miss
                                : inserted[key_pick(rng) % inserted.size()]);
    }
    std::vector<double> batch_values(keys.size(), -1.0);
    std::vector<uint8_t> batch_found(keys.size(), 0xff);
    batch_cache.LookupBatch(keys.data(), keys.size(), batch_values.data(),
                            batch_found.data());
    for (size_t i = 0; i < keys.size(); ++i) {
      double loop_value = -1.0;
      bool loop_found = loop_cache.Lookup(keys[i], &loop_value);
      ASSERT_EQ(batch_found[i] != 0, loop_found) << "key " << keys[i];
      if (loop_found) {
        EXPECT_EQ(Bits(batch_values[i]), Bits(loop_value));
      }
    }
  }
  runtime::CacheStats batch_stats = batch_cache.GetStats();
  runtime::CacheStats loop_stats = loop_cache.GetStats();
  EXPECT_EQ(batch_stats.hits, loop_stats.hits);
  EXPECT_EQ(batch_stats.misses, loop_stats.misses);
  EXPECT_EQ(batch_stats.entries, loop_stats.entries);
}

TEST(EngineThreadsTest, ZeroAutoDetectsHardwareConcurrency) {
  const SemanticNetwork& network = Network();
  runtime::EngineOptions options;
  options.threads = 0;
  runtime::DisambiguationEngine engine(&network, options);
  runtime::EngineStats stats = engine.stats();
  EXPECT_GE(stats.worker_threads, 1);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) {
    EXPECT_EQ(stats.worker_threads, static_cast<int>(hw));
  }
  // The auto-sized pool must actually process work.
  runtime::DocumentJob job;
  job.name = "doc";
  job.xml = "<movie><actor>star</actor></movie>";
  std::vector<runtime::DocumentResult> results = engine.RunBatch({job});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok);
}

}  // namespace
}  // namespace xsdf
