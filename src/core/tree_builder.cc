#include "core/tree_builder.h"

#include "common/strings.h"
#include "core/label_space.h"
#include "text/preprocess.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"
#include "xml/parser.h"

namespace xsdf::core {

std::vector<std::string> LabelSenseTokens(
    const wordnet::SemanticNetwork& network, const std::string& label) {
  if (label.empty()) return {};
  if (network.Contains(label)) return {label};
  if (label.find('_') == std::string::npos) return {label};
  std::vector<std::string> tokens;
  for (std::string& token : StrSplit(label, '_')) {
    if (!token.empty()) tokens.push_back(std::move(token));
  }
  return tokens;
}

const xml::ResolvedLabel& ResolveTagMemo(
    TreeBuildCache& cache, const wordnet::SemanticNetwork& network,
    LabelSpace* label_space, const std::string& tag) {
  auto [it, inserted] = cache.tags.try_emplace(tag);
  if (inserted) {
    text::LexiconProbe probe = [&network](const std::string& lemma) {
      return network.Contains(lemma);
    };
    it->second.label = text::PreprocessTagName(tag, probe).label;
    if (label_space != nullptr) {
      it->second.id = label_space->Resolve(it->second.label);
    }
  }
  return it->second;
}

const std::vector<xml::ResolvedLabel>& TokenizeValueMemo(
    TreeBuildCache& cache, const wordnet::SemanticNetwork& network,
    LabelSpace* label_space, const std::string& value) {
  // Two-level value memo: whole values repeat less than their tokens,
  // so a miss on the value still reuses each token's (pure)
  // normalization + interning. The composition below is
  // PreprocessTextValue() step for step, and interning on first sight
  // of a label follows build order exactly as per-node resolution
  // would, so memoized output is identical to the direct call.
  auto [it, inserted] = cache.values.try_emplace(value);
  if (inserted) {
    text::LexiconProbe probe = [&network](const std::string& lemma) {
      return network.Contains(lemma);
    };
    std::vector<std::string> tokens =
        text::RemoveStopWords(text::Tokenize(value));
    it->second.reserve(tokens.size());
    for (const std::string& token : tokens) {
      if (!text::HasLetter(token)) continue;  // drop pure numbers
      auto [tit, tinserted] = cache.tokens.try_emplace(token);
      if (tinserted) {
        tit->second.label = text::NormalizeToken(token, probe);
        // Tokens that normalize to nothing never become nodes, so
        // they are never interned (matches the per-node path).
        if (label_space != nullptr && !tit->second.label.empty()) {
          tit->second.id = label_space->Resolve(tit->second.label);
        }
      }
      it->second.push_back(tit->second);
    }
  }
  return it->second;
}

Result<xml::LabeledTree> BuildTree(const xml::Document& doc,
                                   const wordnet::SemanticNetwork& network,
                                   bool include_values,
                                   LabelSpace* label_space,
                                   TreeBuildCache* cache) {
  // Documents repeat the same raw tags and values over and over, so
  // the (pure) pre-processing functions are memoized: into the
  // caller's persistent cache when one is passed (cross-document
  // reuse), else into a local one that dies with this build. The
  // build is synchronous, so the hooks capture the cache by pointer.
  TreeBuildCache local_cache;
  if (cache == nullptr) cache = &local_cache;
  xml::TreeBuildOptions options;
  options.include_values = include_values;
  options.resolved_label_transform =
      [&network, cache, label_space](
          const std::string& tag) -> const xml::ResolvedLabel& {
    return ResolveTagMemo(*cache, network, label_space, tag);
  };
  options.resolved_value_tokenizer =
      [&network, cache, label_space](const std::string& value)
      -> const std::vector<xml::ResolvedLabel>& {
    return TokenizeValueMemo(*cache, network, label_space, value);
  };
  return BuildLabeledTree(doc, options);
}

Result<xml::LabeledTree> BuildTreeFromXml(
    const std::string& xml_text, const wordnet::SemanticNetwork& network,
    bool include_values, LabelSpace* label_space, TreeBuildCache* cache) {
  auto doc = xml::Parse(xml_text);
  if (!doc.ok()) return doc.status();
  return BuildTree(*doc, network, include_values, label_space, cache);
}

}  // namespace xsdf::core
