// Streaming front-end identity tests: the fused one-pass parse + tree
// build (core::BuildTreeStreaming) must be indistinguishable from the
// two-pass DOM oracle (xml::Parse + core::BuildTree) — same nodes,
// same labels, same interned ids — over arbitrary generated documents;
// the engine's streaming mode must produce byte-identical batch output
// to the DOM mode at any worker count; and the intra-document subtree
// work stealing must never change a byte. Malformed, truncated, and
// over-budget giant inputs must fail with a Status, never a crash.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/disambiguator.h"
#include "core/label_space.h"
#include "core/streaming_builder.h"
#include "core/tree_builder.h"
#include "datasets/generator.h"
#include "obs/metrics.h"
#include "prop/generators.h"
#include "runtime/engine.h"
#include "wordnet/mini_wordnet.h"
#include "xml/labeled_tree.h"
#include "xml/parser.h"

namespace xsdf {
namespace {

const wordnet::SemanticNetwork& Network() {
  static const wordnet::SemanticNetwork* network = [] {
    auto result = wordnet::BuildMiniWordNet();
    return new wordnet::SemanticNetwork(std::move(result).value());
  }();
  return *network;
}

/// Structural + label identity of two labeled trees, including the
/// interned label ids (which encode interning *order*, so equality
/// proves the two builds resolved labels in the same sequence).
void ExpectTreesIdentical(const xml::LabeledTree& dom,
                          const xml::LabeledTree& streaming,
                          const std::string& context) {
  ASSERT_EQ(dom.size(), streaming.size()) << context;
  for (xml::NodeId id = 0; id < static_cast<xml::NodeId>(dom.size()); ++id) {
    const xml::TreeNode& a = dom.node(id);
    const xml::TreeNode& b = streaming.node(id);
    ASSERT_EQ(a.label, b.label) << context << " node " << id;
    ASSERT_EQ(a.raw, b.raw) << context << " node " << id;
    ASSERT_EQ(a.kind, b.kind) << context << " node " << id;
    ASSERT_EQ(a.parent, b.parent) << context << " node " << id;
    ASSERT_EQ(a.children, b.children) << context << " node " << id;
    ASSERT_EQ(a.depth, b.depth) << context << " node " << id;
    ASSERT_EQ(dom.label_id(id), streaming.label_id(id))
        << context << " node " << id;
  }
  EXPECT_EQ(dom.has_label_ids(), streaming.has_label_ids()) << context;
}

// The core identity property, driven over 500 generated documents:
// for every well-formed input, BuildTreeStreaming produces exactly the
// tree that Parse + BuildTree produces — same preorder, same labels,
// same raws, same kinds, and (under independent LabelSpaces) the same
// interned ids, which proves the interning order is reproduced too.
TEST(StreamingBuilderTest, MatchesDomBuildOnGeneratedCorpus) {
  Rng rng(20260807);
  propgen::XmlGenOptions gen;
  gen.max_depth = 6;
  gen.max_children = 5;
  int skipped = 0;
  for (int i = 0; i < 500; ++i) {
    const std::string xml_text = propgen::GenerateXmlDocument(rng, gen);
    auto doc = xml::Parse(xml_text);
    ASSERT_TRUE(doc.ok()) << "doc " << i << ": " << doc.status().ToString();

    core::LabelSpace dom_space(&Network());
    core::TreeBuildCache dom_cache;
    auto dom_tree = core::BuildTree(*doc, Network(),
                                    /*include_values=*/true, &dom_space,
                                    &dom_cache);

    core::LabelSpace streaming_space(&Network());
    core::TreeBuildCache streaming_cache;
    auto streaming_tree = core::BuildTreeStreaming(
        xml_text, Network(), xml::ParseOptions{}, /*include_values=*/true,
        &streaming_space, &streaming_cache);

    // Both paths must agree even on rejection (e.g. a document whose
    // root is only whitespace text builds no tree).
    ASSERT_EQ(dom_tree.ok(), streaming_tree.ok())
        << "doc " << i << ": dom=" << dom_tree.status().ToString()
        << " streaming=" << streaming_tree.status().ToString();
    if (!dom_tree.ok()) {
      ++skipped;
      continue;
    }
    ExpectTreesIdentical(*dom_tree, *streaming_tree,
                         "doc " + std::to_string(i));
  }
  // The generator overwhelmingly produces buildable documents; if most
  // were skipped the property above tested nothing.
  EXPECT_LT(skipped, 50);
}

// Structure-only mode (include_values = false) must agree too — the
// token-suppression logic lives in different places on the two paths.
TEST(StreamingBuilderTest, MatchesDomBuildWithoutValues) {
  Rng rng(7);
  propgen::XmlGenOptions gen;
  for (int i = 0; i < 50; ++i) {
    const std::string xml_text = propgen::GenerateXmlDocument(rng, gen);
    auto doc = xml::Parse(xml_text);
    ASSERT_TRUE(doc.ok());
    auto dom_tree =
        core::BuildTree(*doc, Network(), /*include_values=*/false);
    auto streaming_tree = core::BuildTreeStreaming(
        xml_text, Network(), xml::ParseOptions{}, /*include_values=*/false);
    ASSERT_EQ(dom_tree.ok(), streaming_tree.ok()) << "doc " << i;
    if (!dom_tree.ok()) continue;
    ASSERT_EQ(dom_tree->size(), streaming_tree->size()) << "doc " << i;
    for (xml::NodeId id = 0;
         id < static_cast<xml::NodeId>(dom_tree->size()); ++id) {
      ASSERT_EQ(dom_tree->node(id).label, streaming_tree->node(id).label)
          << "doc " << i << " node " << id;
      ASSERT_EQ(dom_tree->node(id).kind, streaming_tree->node(id).kind)
          << "doc " << i << " node " << id;
    }
  }
}

// Malformed and over-budget inputs: both front ends must return the
// failure as a Status (and agree on failing), never crash.
TEST(StreamingBuilderTest, MalformedAndOverBudgetInputsFailCleanly) {
  auto giant =
      datasets::GiantDocuments(/*count=*/1, /*target_bytes=*/64u << 10,
                               /*seed=*/1);
  ASSERT_EQ(giant.size(), 1u);
  const std::string& whole = giant[0].xml;

  // Truncation at several byte offsets: mid-tag, mid-text, mid-close.
  for (size_t cut : {whole.size() / 7, whole.size() / 3, whole.size() - 9}) {
    const std::string truncated = whole.substr(0, cut);
    auto streaming =
        core::BuildTreeStreaming(truncated, Network(), xml::ParseOptions{});
    EXPECT_FALSE(streaming.ok()) << "cut at " << cut;
    auto doc = xml::Parse(truncated);
    EXPECT_FALSE(doc.ok()) << "cut at " << cut;
  }

  // Budget violations surface as OutOfRange on both paths.
  xml::ParseOptions tight;
  tight.limits.max_input_bytes = 1024;
  EXPECT_FALSE(core::BuildTreeStreaming(whole, Network(), tight).ok());
  EXPECT_FALSE(xml::Parse(whole, tight).ok());
  xml::ParseOptions shallow;
  shallow.limits.max_depth = 4;
  EXPECT_FALSE(core::BuildTreeStreaming(whole, Network(), shallow).ok());
  EXPECT_FALSE(xml::Parse(whole, shallow).ok());

  // The well-formed original passes both, for contrast.
  EXPECT_TRUE(core::BuildTreeStreaming(whole, Network(),
                                       xml::ParseOptions{}).ok());
}

// Streaming reports bounded scaffolding: on a document dominated by
// wide/deep repetition the transient builder state must stay far below
// the DOM arena's footprint (the bounded-peak-memory claim, asserted
// end-to-end by the giant-doc CI job; this is the in-process version).
TEST(StreamingBuilderTest, ScaffoldingStaysSmall) {
  auto giant = datasets::GiantDocuments(1, /*target_bytes=*/1u << 20, 3);
  core::StreamingBuildStats stats;
  auto tree = core::BuildTreeStreaming(giant[0].xml, Network(),
                                       xml::ParseOptions{}, true, nullptr,
                                       nullptr, &stats);
  ASSERT_TRUE(tree.ok());
  EXPECT_GT(stats.scaffold_peak_bytes, 0u);
  // < 25% of the document beyond the input buffer; in practice the
  // scaffold is a few KB regardless of document size.
  EXPECT_LT(stats.scaffold_peak_bytes, giant[0].xml.size() / 4);
}

std::vector<runtime::DocumentJob> CorpusJobs() {
  std::vector<runtime::DocumentJob> jobs;
  for (const auto* generator : datasets::AllDatasets()) {
    for (auto& doc : generator->Generate(99)) {
      jobs.push_back({0, doc.name, std::move(doc.xml)});
    }
  }
  return jobs;
}

std::vector<std::string> RunEngine(const runtime::EngineOptions& options,
                                   const std::vector<runtime::DocumentJob>& jobs,
                                   runtime::EngineStats* stats = nullptr) {
  runtime::DisambiguationEngine engine(&Network(), options);
  std::vector<std::string> output;
  for (const auto& result : engine.RunBatch(jobs)) {
    EXPECT_TRUE(result.ok) << result.name << ": " << result.error;
    output.push_back(result.semantic_xml);
  }
  if (stats != nullptr) *stats = engine.stats();
  return output;
}

// Batch output must be byte-identical across front end x worker count:
// the DOM path is the bit-identity oracle for the streaming path.
TEST(StreamingEngineTest, FrontEndsAndWorkerCountsAgreeByteForByte) {
  std::vector<runtime::DocumentJob> jobs = CorpusJobs();
  runtime::EngineOptions base;
  base.threads = 1;
  base.streaming_frontend = true;
  std::vector<std::string> reference = RunEngine(base, jobs);

  for (bool streaming : {true, false}) {
    for (int threads : {1, 8}) {
      runtime::EngineOptions options;
      options.threads = threads;
      options.streaming_frontend = streaming;
      std::vector<std::string> output = RunEngine(options, jobs);
      ASSERT_EQ(output.size(), reference.size());
      for (size_t i = 0; i < output.size(); ++i) {
        ASSERT_EQ(output[i], reference[i])
            << jobs[i].name << " under streaming=" << streaming
            << " threads=" << threads;
      }
    }
  }
}

// The work-stealing fan-out itself: a multi-MB giant document run with
// 8 workers and aggressive chunking must produce exactly the bytes the
// 1-worker run produces, and the 8-worker engine must actually have
// taken the chunked path (subtree_parallel_docs > 0).
TEST(StreamingEngineTest, SubtreeStealingPreservesBytesOnGiantDocument) {
  auto giant = datasets::GiantDocuments(1, /*target_bytes=*/2u << 20, 11);
  std::vector<runtime::DocumentJob> jobs;
  jobs.push_back({0, giant[0].name, std::move(giant[0].xml)});

  runtime::EngineOptions solo;
  solo.threads = 1;
  // Radius 1 keeps the giant-doc disambiguation fast; identity only
  // needs both runs configured the same.
  solo.disambiguator.sphere_radius = 1;
  std::vector<std::string> solo_output = RunEngine(solo, jobs);

  runtime::EngineOptions pool = solo;
  pool.threads = 8;
  pool.subtree_min_targets = 8;
  pool.subtree_chunk_targets = 64;
  runtime::EngineStats stats;
  std::vector<std::string> pool_output = RunEngine(pool, jobs, &stats);

  ASSERT_EQ(solo_output.size(), 1u);
  ASSERT_EQ(pool_output.size(), 1u);
  EXPECT_EQ(solo_output[0], pool_output[0]);
  EXPECT_GT(stats.subtree_parallel_docs, 0u);
  EXPECT_GT(stats.frontend_peak_bytes, 0u);

  // Disabling the fan-out must change nothing but the path taken.
  runtime::EngineOptions serial = pool;
  serial.subtree_parallelism = false;
  runtime::EngineStats serial_stats;
  std::vector<std::string> serial_output =
      RunEngine(serial, jobs, &serial_stats);
  EXPECT_EQ(serial_output[0], pool_output[0]);
  EXPECT_EQ(serial_stats.subtree_parallel_docs, 0u);
}

// Oversized / truncated giant inputs through the full engine: a failed
// document is a DocumentResult error, never a crash, on both front
// ends — and the parse_limits plumbing (the --max-input-bytes /
// --max-depth flags) actually reaches the parser.
TEST(StreamingEngineTest, GiantBudgetViolationsFailPerDocument) {
  auto giant = datasets::GiantDocuments(1, /*target_bytes=*/256u << 10, 5);
  for (bool streaming : {true, false}) {
    runtime::EngineOptions options;
    options.threads = 2;
    options.streaming_frontend = streaming;
    options.parse_limits.max_input_bytes = 4096;
    runtime::DisambiguationEngine engine(&Network(), options);
    std::vector<runtime::DocumentJob> jobs;
    jobs.push_back({0, "oversized", giant[0].xml});
    jobs.push_back({0, "truncated",
                    giant[0].xml.substr(0, giant[0].xml.size() / 2)});
    jobs.push_back({0, "tiny-ok", "<films><star>Kelly</star></films>"});
    auto results = engine.RunBatch(std::move(jobs));
    ASSERT_EQ(results.size(), 3u);
    EXPECT_FALSE(results[0].ok) << "streaming=" << streaming;
    EXPECT_FALSE(results[1].ok) << "streaming=" << streaming;
    EXPECT_TRUE(results[2].ok)
        << "streaming=" << streaming << ": " << results[2].error;
    runtime::EngineStats stats = engine.stats();
    EXPECT_EQ(stats.failures, 2u);
  }
}

// The new observability gauges surface through PublishStatsToMetrics.
TEST(StreamingEngineTest, PublishesFrontendAndStealGauges) {
  obs::MetricsRegistry metrics;
  runtime::EngineOptions options;
  options.threads = 2;
  options.metrics = &metrics;
  runtime::DisambiguationEngine engine(&Network(), options);
  std::vector<runtime::DocumentJob> jobs;
  jobs.push_back({0, "doc", "<films><star>Kelly</star></films>"});
  for (const auto& result : engine.RunBatch(std::move(jobs))) {
    ASSERT_TRUE(result.ok) << result.error;
  }
  engine.PublishStatsToMetrics();
  EXPECT_GT(metrics.GetGauge("frontend.arena_peak_bytes")->Value(), 0);
  EXPECT_GE(metrics.GetGauge("engine.subtree_steals")->Value(), 0);
  EXPECT_EQ(metrics.GetGauge("engine.subtree_queue_depth")->Value(), 0);
}

}  // namespace
}  // namespace xsdf
