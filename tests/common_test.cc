// Unit tests for the common substrate: Status/Result error handling,
// string utilities, and the deterministic PRNG.

#include <gtest/gtest.h>

#include <set>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace xsdf {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::Corruption("bad record");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_EQ(status.message(), "bad record");
  EXPECT_EQ(status.ToString(), "Corruption: bad record");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status {
    XSDF_RETURN_IF_ERROR(Status::Internal("boom"));
    return Status::Ok();
  };
  EXPECT_EQ(fails().code(), StatusCode::kInternal);
  auto succeeds = []() -> Status {
    XSDF_RETURN_IF_ERROR(Status::Ok());
    return Status::NotFound("reached");
  };
  EXPECT_EQ(succeeds().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("nope"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string value = std::move(result).value();
  EXPECT_EQ(value, "payload");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("inner");
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    XSDF_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(outer(false).value(), 8);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kInternal);
}

TEST(StringsTest, StrSplitKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringsTest, StrSplitAnyDropsEmpties) {
  EXPECT_EQ(StrSplitAny("a, b;;c", ", ;"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(StrSplitAny(",,,", ",").empty());
}

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ", "), "");
  EXPECT_EQ(StrJoin({"only"}, "-"), "only");
}

TEST(StringsTest, AsciiToLower) {
  EXPECT_EQ(AsciiToLower("MiXeD 123 CASE"), "mixed 123 case");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hello \t\n"), "hello");
  EXPECT_EQ(StripWhitespace("\n\t "), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_TRUE(EndsWith("file.xml", ".xml"));
  EXPECT_FALSE(EndsWith("xml", ".xml"));
}

TEST(StringsTest, IsAlphaOnly) {
  EXPECT_TRUE(IsAlphaOnly("word"));
  EXPECT_FALSE(IsAlphaOnly("word1"));
  EXPECT_FALSE(IsAlphaOnly(""));
  EXPECT_FALSE(IsAlphaOnly("two words"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%05d-%s", 42, "x"), "00042-x");
  EXPECT_EQ(StrFormat("%.3f", 0.5), "0.500");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 12);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(10), 10u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // every value hit
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

}  // namespace
}  // namespace xsdf
